//! Arena-backed storage for cache entries, addressed by generational
//! handles.
//!
//! A fleet-scale cache cannot afford one heap allocation per entry per
//! host: a million hosts each holding a handful of `Vec<Poi>`-backed
//! entries is millions of small allocations churned every epoch. The
//! [`EntryArena`] instead keeps every entry of one host cache in two
//! flat buffers — a slot table of fixed-size entry metadata and a shared
//! pool of [`PoiId`] handles — and hands out [`EntryId`] generational
//! indices. Steady-state insert/evict traffic then allocates nothing:
//! freed slots are reused through a free list, and the POI pool is
//! compacted in place (amortized O(1)) once garbage reaches half the
//! pool.
//!
//! ## Handle lifetimes
//!
//! An [`EntryId`] is an index plus a generation counter. Removing an
//! entry bumps its slot's generation, so a stale handle held across a
//! removal can never alias a later entry that reuses the slot —
//! [`EntryArena::get`] returns `None` for it. Handles are only
//! meaningful against the arena that issued them.

use crate::RegionEntry;
use airshare_broadcast::{PoiId, PoiTable};
use airshare_geom::Rect;

/// Generational handle to one entry in an [`EntryArena`].
///
/// `Copy`, 8 bytes, and safe to hold across mutations: if the entry it
/// named has been removed (even if the slot was reused), lookups return
/// `None` instead of aliasing the new occupant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EntryId {
    index: u32,
    generation: u32,
}

impl EntryId {
    /// The slot index (stable while the entry is live).
    #[inline]
    pub fn index(self) -> usize {
        self.index as usize
    }

    /// The generation the slot had when this handle was issued.
    #[inline]
    pub fn generation(self) -> u32 {
        self.generation
    }
}

/// One slot of entry metadata. The POI membership lives as a
/// `[start, start+len)` span in the arena's shared pool.
#[derive(Clone, Copy, Debug)]
struct Slot {
    generation: u32,
    live: bool,
    vr: Rect,
    created_at: f64,
    last_used: f64,
    start: u32,
    len: u32,
}

/// A borrowed view of one live cache entry: the verified region, its
/// timestamps, and the POI membership as handles into the canonical
/// [`PoiTable`].
#[derive(Clone, Copy, Debug)]
pub struct EntryView<'a> {
    /// The verified region.
    pub vr: Rect,
    /// Simulation time the entry was created (minutes).
    pub created_at: f64,
    /// Last time this entry served a query (for LRU).
    pub last_used: f64,
    /// Handles of the POIs inside `vr`, in stored order.
    pub poi_ids: &'a [PoiId],
}

impl<'a> EntryView<'a> {
    /// Number of POIs carried.
    pub fn len(&self) -> usize {
        self.poi_ids.len()
    }

    /// The entry carries no POIs.
    pub fn is_empty(&self) -> bool {
        self.poi_ids.is_empty()
    }

    /// Whether the entry honors the containment invariant *against the
    /// canonical table*: well-formed finite region, every handle
    /// resolvable, every resolved position inside the region.
    pub fn is_consistent(&self, table: &PoiTable) -> bool {
        let r = &self.vr;
        r.x1.is_finite()
            && r.y1.is_finite()
            && r.x2.is_finite()
            && r.y2.is_finite()
            && r.x1 <= r.x2
            && r.y1 <= r.y2
            && self
                .poi_ids
                .iter()
                .all(|&id| table.get(id).is_some_and(|p| r.contains(p.pos)))
    }

    /// Materializes the entry as an owned [`RegionEntry`], resolving
    /// handles through `table` (unresolvable handles are skipped).
    pub fn resolve(&self, table: &PoiTable) -> RegionEntry {
        RegionEntry {
            vr: self.vr,
            pois: self
                .poi_ids
                .iter()
                .filter_map(|&id| table.get(id).copied())
                .collect(),
            created_at: self.created_at,
            last_used: self.last_used,
        }
    }
}

/// Arena storage for the entries of one host cache.
///
/// See the module docs for the memory model. Cloning an arena clones
/// the flat buffers; [`Clone::clone_from`] reuses the destination's
/// buffers, which is what keeps the simulator's per-epoch cache
/// snapshots allocation-free once warm.
#[derive(Debug, Default)]
pub struct EntryArena {
    slots: Vec<Slot>,
    pool: Vec<PoiId>,
    free: Vec<u32>,
    /// Scratch buffer for in-place pool compaction (kept to retain
    /// capacity between compactions).
    scratch: Vec<PoiId>,
    /// Dead handles still occupying pool space.
    garbage: usize,
}

impl Clone for EntryArena {
    fn clone(&self) -> Self {
        Self {
            slots: self.slots.clone(),
            pool: self.pool.clone(),
            free: self.free.clone(),
            scratch: Vec::new(),
            garbage: self.garbage,
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.slots.clone_from(&source.slots);
        self.pool.clone_from(&source.pool);
        self.free.clone_from(&source.free);
        self.garbage = source.garbage;
    }
}

impl EntryArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Whether the arena holds no live entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total POI handles held by live entries.
    pub fn pool_live(&self) -> usize {
        self.pool.len() - self.garbage
    }

    /// Inserts an entry, pushing its POI handles into the pool.
    /// Compacts the pool first when garbage has reached half of it, so
    /// pool capacity stays bounded by ~2× the live watermark.
    pub fn insert(
        &mut self,
        vr: Rect,
        created_at: f64,
        last_used: f64,
        ids: impl IntoIterator<Item = PoiId>,
    ) -> EntryId {
        if self.garbage > 0 && 2 * self.garbage >= self.pool.len() {
            self.compact();
        }
        let start = self.pool.len() as u32;
        self.pool.extend(ids);
        let len = self.pool.len() as u32 - start;
        let slot = Slot {
            generation: 0, // patched below for reused slots
            live: true,
            vr,
            created_at,
            last_used,
            start,
            len,
        };
        match self.free.pop() {
            Some(i) => {
                let s = &mut self.slots[i as usize];
                let generation = s.generation;
                *s = Slot { generation, ..slot };
                EntryId {
                    index: i,
                    generation,
                }
            }
            None => {
                self.slots.push(slot);
                EntryId {
                    index: (self.slots.len() - 1) as u32,
                    generation: 0,
                }
            }
        }
    }

    /// Removes an entry. Returns `false` (and does nothing) for a stale
    /// or foreign handle. The slot's generation is bumped so existing
    /// handles to it become invalid; its pool span becomes garbage to be
    /// reclaimed by the next compaction.
    pub fn remove(&mut self, id: EntryId) -> bool {
        match self.slots.get_mut(id.index()) {
            Some(s) if s.live && s.generation == id.generation => {
                s.live = false;
                s.generation = s.generation.wrapping_add(1);
                self.garbage += s.len as usize;
                self.free.push(id.index);
                true
            }
            _ => false,
        }
    }

    /// Whether the handle names a live entry.
    pub fn contains(&self, id: EntryId) -> bool {
        self.slot(id).is_some()
    }

    #[inline]
    fn slot(&self, id: EntryId) -> Option<&Slot> {
        self.slots
            .get(id.index())
            .filter(|s| s.live && s.generation == id.generation)
    }

    /// A view of the entry, or `None` for a stale/foreign handle.
    pub fn get(&self, id: EntryId) -> Option<EntryView<'_>> {
        self.slot(id).map(|s| EntryView {
            vr: s.vr,
            created_at: s.created_at,
            last_used: s.last_used,
            poi_ids: &self.pool[s.start as usize..(s.start + s.len) as usize],
        })
    }

    fn expect_slot(&self, id: EntryId) -> &Slot {
        self.slot(id).expect("stale EntryId")
    }

    /// The entry's verified region. Panics on a stale handle (internal
    /// callers hold only live handles).
    #[inline]
    pub fn vr(&self, id: EntryId) -> Rect {
        self.expect_slot(id).vr
    }

    /// The entry's creation time. Panics on a stale handle.
    #[inline]
    pub fn created_at(&self, id: EntryId) -> f64 {
        self.expect_slot(id).created_at
    }

    /// The entry's last-used time. Panics on a stale handle.
    #[inline]
    pub fn last_used(&self, id: EntryId) -> f64 {
        self.expect_slot(id).last_used
    }

    /// POI count of the entry. Panics on a stale handle.
    #[inline]
    pub fn poi_len(&self, id: EntryId) -> usize {
        self.expect_slot(id).len as usize
    }

    /// The entry's POI handles. Panics on a stale handle.
    #[inline]
    pub fn poi_ids(&self, id: EntryId) -> &[PoiId] {
        let s = self.expect_slot(id);
        &self.pool[s.start as usize..(s.start + s.len) as usize]
    }

    /// Marks the entry as used at `t`. Panics on a stale handle.
    #[inline]
    pub fn set_last_used(&mut self, id: EntryId, t: f64) {
        let idx = id.index();
        let s = self
            .slots
            .get_mut(idx)
            .filter(|s| s.live && s.generation == id.generation)
            .expect("stale EntryId");
        s.last_used = t;
    }

    /// Reclaims pool space held by removed entries. Live spans are
    /// copied (in slot order) into a retained scratch buffer that is
    /// swapped in, so a warm arena compacts without allocating.
    pub fn compact(&mut self) {
        if self.garbage == 0 {
            return;
        }
        self.scratch.clear();
        self.scratch.reserve(self.pool.len() - self.garbage);
        for s in &mut self.slots {
            if !s.live {
                continue;
            }
            let new_start = self.scratch.len() as u32;
            self.scratch
                .extend_from_slice(&self.pool[s.start as usize..(s.start + s.len) as usize]);
            s.start = new_start;
        }
        std::mem::swap(&mut self.pool, &mut self.scratch);
        self.garbage = 0;
    }

    /// Removes every entry (generations keep advancing, so handles from
    /// before the clear stay invalid).
    pub fn clear(&mut self) {
        for (i, s) in self.slots.iter_mut().enumerate() {
            if s.live {
                s.live = false;
                s.generation = s.generation.wrapping_add(1);
                self.free.push(i as u32);
            }
        }
        self.pool.clear();
        self.garbage = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airshare_broadcast::Poi;
    use airshare_geom::Point;

    fn rect(s: f64) -> Rect {
        Rect::from_coords(0.0, 0.0, s, s)
    }

    fn ids(range: std::ops::Range<u32>) -> Vec<PoiId> {
        range.map(PoiId).collect()
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let mut a = EntryArena::new();
        let e = a.insert(rect(1.0), 1.0, 2.0, ids(0..3));
        assert_eq!(a.len(), 1);
        let v = a.get(e).unwrap();
        assert_eq!(v.vr, rect(1.0));
        assert_eq!(v.created_at, 1.0);
        assert_eq!(v.last_used, 2.0);
        assert_eq!(v.poi_ids, &[PoiId(0), PoiId(1), PoiId(2)]);
        assert!(a.remove(e));
        assert!(!a.remove(e), "double remove must fail");
        assert!(a.get(e).is_none());
        assert_eq!(a.len(), 0);
    }

    #[test]
    fn stale_handle_never_aliases_reused_slot() {
        let mut a = EntryArena::new();
        let e1 = a.insert(rect(1.0), 0.0, 0.0, ids(0..2));
        a.remove(e1);
        let e2 = a.insert(rect(2.0), 0.0, 0.0, ids(5..9));
        // Slot was reused but the old handle stays dead.
        assert_eq!(e1.index(), e2.index());
        assert!(a.get(e1).is_none());
        assert_eq!(a.get(e2).unwrap().poi_ids.len(), 4);
    }

    #[test]
    fn compaction_preserves_spans_and_frees_garbage() {
        let mut a = EntryArena::new();
        let keep1 = a.insert(rect(1.0), 0.0, 0.0, ids(0..10));
        let drop1 = a.insert(rect(2.0), 0.0, 0.0, ids(10..30));
        let keep2 = a.insert(rect(3.0), 0.0, 0.0, ids(30..35));
        a.remove(drop1);
        assert_eq!(a.pool_live(), 15);
        a.compact();
        assert_eq!(a.pool_live(), 15);
        assert_eq!(a.poi_ids(keep1), ids(0..10).as_slice());
        assert_eq!(a.poi_ids(keep2), ids(30..35).as_slice());
    }

    #[test]
    fn steady_state_churn_does_not_grow_pool_unboundedly() {
        let mut a = EntryArena::new();
        let mut live: Vec<EntryId> = Vec::new();
        for round in 0..1000u32 {
            if live.len() >= 8 {
                let victim = live.remove((round as usize) % live.len());
                a.remove(victim);
            }
            live.push(a.insert(rect(1.0), 0.0, 0.0, ids(round..round + 10)));
        }
        // 8 live entries × 10 ids; pool bounded ~2× the live watermark.
        assert!(a.pool.capacity() <= 400, "pool grew to {}", a.pool.capacity());
        for &e in &live {
            assert!(a.contains(e));
        }
    }

    #[test]
    fn view_consistency_checks_against_table() {
        let table = PoiTable::from_pois([Poi::new(0, Point::new(0.5, 0.5))]);
        let mut a = EntryArena::new();
        let good = a.insert(rect(1.0), 0.0, 0.0, [PoiId(0)]);
        let unresolvable = a.insert(rect(1.0), 0.0, 0.0, [PoiId(7)]);
        assert!(a.get(good).unwrap().is_consistent(&table));
        assert!(!a.get(unresolvable).unwrap().is_consistent(&table));
        let resolved = a.get(good).unwrap().resolve(&table);
        assert_eq!(resolved.pois.len(), 1);
        assert_eq!(resolved.pois[0].pos, Point::new(0.5, 0.5));
    }
}
