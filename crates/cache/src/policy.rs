//! Cache replacement policies.

use crate::RegionEntry;
use airshare_geom::Point;

/// Which entry to evict when the cache is over capacity.
///
/// The paper (§4.1) uses a policy "based on the current moving direction
/// and the data distance between the current location of the MH and the
/// location of a data object", following Ren & Dunham's semantic caching
/// (ref \[13\] of the paper): data ahead of the vehicle is about to
/// become relevant; data
/// behind it is receding. The baselines exist for the `cache_policy`
/// ablation bench.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ReplacementPolicy {
    /// Distance to the region, discounted when the region lies in the
    /// direction of travel and penalized when behind (the paper's
    /// policy).
    #[default]
    DirectionDistance,
    /// Pure distance from the host to the region.
    DistanceOnly,
    /// Least-recently-used.
    Lru,
}

impl ReplacementPolicy {
    /// Eviction score for one entry — higher means evict sooner.
    ///
    /// `pos` is the host's current position, `heading` its unit heading
    /// (None while paused), `now` the current time.
    pub fn score(
        &self,
        entry: &RegionEntry,
        pos: Point,
        heading: Option<(f64, f64)>,
        now: f64,
    ) -> f64 {
        self.score_parts(&entry.vr, entry.last_used, pos, heading, now)
    }

    /// [`Self::score`] on the two columns a decision actually reads —
    /// the entry's region and last-used time — so arena-backed storage
    /// can score without materializing a [`RegionEntry`]. Same float
    /// arithmetic as `score`, bit for bit.
    pub fn score_parts(
        &self,
        vr: &airshare_geom::Rect,
        last_used: f64,
        pos: Point,
        heading: Option<(f64, f64)>,
        now: f64,
    ) -> f64 {
        match self {
            ReplacementPolicy::Lru => now - last_used,
            ReplacementPolicy::DistanceOnly => vr.distance_to_point(pos),
            ReplacementPolicy::DirectionDistance => {
                let d = vr.distance_to_point(pos);
                match heading {
                    None => d,
                    Some((hx, hy)) => {
                        let c = vr.center();
                        let (vx, vy) = pos.vector_to(c);
                        let norm = vx.hypot(vy);
                        if norm < 1e-9 {
                            // Host is at the region's centre: maximally
                            // relevant regardless of heading.
                            return 0.0;
                        }
                        let cos = (vx * hx + vy * hy) / norm;
                        // cos ∈ [-1, 1]: ahead → halve the effective
                        // distance, behind → double it. Smooth in between.
                        d * (1.5 - cos)
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airshare_broadcast::Poi;
    use airshare_geom::Rect;

    fn entry_at(x: f64, y: f64, last_used: f64) -> RegionEntry {
        let vr = Rect::centered_square(Point::new(x, y), 0.5);
        let mut e = RegionEntry::new(vr, [Poi::new(0, Point::new(x, y))], 0.0);
        e.last_used = last_used;
        e
    }

    #[test]
    fn direction_prefers_regions_ahead() {
        let policy = ReplacementPolicy::DirectionDistance;
        let pos = Point::ORIGIN;
        let heading = Some((1.0, 0.0)); // moving east
        let ahead = entry_at(5.0, 0.0, 0.0);
        let behind = entry_at(-5.0, 0.0, 0.0);
        let s_ahead = policy.score(&ahead, pos, heading, 0.0);
        let s_behind = policy.score(&behind, pos, heading, 0.0);
        assert!(
            s_ahead < s_behind,
            "ahead {s_ahead} should score lower (keep) than behind {s_behind}"
        );
    }

    #[test]
    fn direction_falls_back_to_distance_when_paused() {
        let policy = ReplacementPolicy::DirectionDistance;
        let near = entry_at(1.0, 0.0, 0.0);
        let far = entry_at(9.0, 0.0, 0.0);
        let s_near = policy.score(&near, Point::ORIGIN, None, 0.0);
        let s_far = policy.score(&far, Point::ORIGIN, None, 0.0);
        assert!(s_near < s_far);
    }

    #[test]
    fn lru_scores_by_staleness() {
        let policy = ReplacementPolicy::Lru;
        let old = entry_at(0.0, 0.0, 1.0);
        let fresh = entry_at(0.0, 0.0, 9.0);
        assert!(
            policy.score(&old, Point::ORIGIN, None, 10.0)
                > policy.score(&fresh, Point::ORIGIN, None, 10.0)
        );
    }

    #[test]
    fn containing_region_scores_minimal_distance() {
        let policy = ReplacementPolicy::DistanceOnly;
        let e = entry_at(0.0, 0.0, 0.0);
        assert_eq!(policy.score(&e, Point::new(0.1, 0.1), None, 0.0), 0.0);
    }
}
