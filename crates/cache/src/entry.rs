//! The atomic cache entry: a verified region and its POIs.

use airshare_broadcast::Poi;
use airshare_geom::{Point, Rect};

/// A verified region `VR` together with the complete set of POIs inside
/// it (`p.O` restricted to the region).
///
/// Invariant (checked in debug builds at construction): every POI lies
/// inside `vr`. The *completeness* half of the invariant — no POI of the
/// global dataset inside `vr` is missing — cannot be checked locally; it
/// is guaranteed by construction (entries only ever come from broadcast
/// retrievals or from sub-regions of other verified regions) and
/// validated against the ground-truth oracle in integration tests.
#[derive(Clone, Debug)]
pub struct RegionEntry {
    /// The verified region.
    pub vr: Rect,
    /// All POIs inside `vr`, in no particular order.
    pub pois: Vec<Poi>,
    /// Simulation time the entry was created (minutes).
    pub created_at: f64,
    /// Last time this entry served a query (for LRU).
    pub last_used: f64,
}

impl RegionEntry {
    /// Creates an entry, filtering `pois` to those inside `vr`.
    ///
    /// The filter makes construction safe to call with a superset (e.g.
    /// every POI downloaded from the channel): completeness within `vr`
    /// is preserved by *narrowing* the POI set to the region, never by
    /// widening the region.
    pub fn new(vr: Rect, pois: impl IntoIterator<Item = Poi>, now: f64) -> Self {
        let pois: Vec<Poi> = pois.into_iter().filter(|p| vr.contains(p.pos)).collect();
        Self {
            vr,
            pois,
            created_at: now,
            last_used: now,
        }
    }

    /// Whether the entry honors the containment half of the invariant:
    /// the region is a well-formed finite rectangle and every carried POI
    /// lies inside it. Entries built through [`RegionEntry::new`] always
    /// are; entries received from peers or constructed field-by-field may
    /// not be, and an inconsistent entry must never be cached or shared —
    /// its claim of completeness is unfalsifiable but its claim of
    /// containment is checkably false.
    pub fn is_consistent(&self) -> bool {
        let r = &self.vr;
        r.x1.is_finite()
            && r.y1.is_finite()
            && r.x2.is_finite()
            && r.y2.is_finite()
            && r.x1 <= r.x2
            && r.y1 <= r.y2
            && self.pois.iter().all(|p| r.contains(p.pos))
    }

    /// Number of POIs carried.
    pub fn len(&self) -> usize {
        self.pois.len()
    }

    /// The entry carries no POIs (still a valid verified region — knowing
    /// an area is empty is useful knowledge).
    pub fn is_empty(&self) -> bool {
        self.pois.is_empty()
    }

    /// Shrinks the entry around `focus` until it carries at most
    /// `max_pois`, by scaling the region toward `focus` (clamped into the
    /// region first). Soundness is preserved: the shrunk region is a
    /// subset of the original, and the POI set is re-filtered to it.
    pub fn shrink_to_fit(&self, focus: Point, max_pois: usize) -> RegionEntry {
        if self.pois.len() <= max_pois {
            return self.clone();
        }
        let anchor = self.vr.clamp_point(focus);
        // Binary search the scale factor: POI count inside the scaled
        // region is monotone in the scale.
        let mut lo = 0.0_f64;
        let mut hi = 1.0_f64;
        for _ in 0..40 {
            let mid = 0.5 * (lo + hi);
            if self.count_in_scaled(anchor, mid) <= max_pois {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let vr = self.scaled(anchor, lo);
        RegionEntry::new(vr, self.pois.iter().copied(), self.created_at)
    }

    fn scaled(&self, anchor: Point, s: f64) -> Rect {
        Rect::from_coords(
            anchor.x + (self.vr.x1 - anchor.x) * s,
            anchor.y + (self.vr.y1 - anchor.y) * s,
            anchor.x + (self.vr.x2 - anchor.x) * s,
            anchor.y + (self.vr.y2 - anchor.y) * s,
        )
    }

    fn count_in_scaled(&self, anchor: Point, s: f64) -> usize {
        let r = self.scaled(anchor, s);
        self.pois.iter().filter(|p| r.contains(p.pos)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poi(id: u32, x: f64, y: f64) -> Poi {
        Poi::new(id, Point::new(x, y))
    }

    #[test]
    fn construction_filters_to_region() {
        let vr = Rect::from_coords(0.0, 0.0, 2.0, 2.0);
        let e = RegionEntry::new(vr, [poi(0, 1.0, 1.0), poi(1, 5.0, 5.0)], 0.0);
        assert_eq!(e.len(), 1);
        assert_eq!(e.pois[0].id, 0);
    }

    #[test]
    fn empty_region_entry_is_valid() {
        let vr = Rect::from_coords(0.0, 0.0, 1.0, 1.0);
        let e = RegionEntry::new(vr, [], 3.0);
        assert!(e.is_empty());
        assert_eq!(e.created_at, 3.0);
    }

    #[test]
    fn shrink_keeps_nearest_and_stays_inside() {
        let vr = Rect::from_coords(0.0, 0.0, 10.0, 10.0);
        let pois: Vec<Poi> = (0..100)
            .map(|i| poi(i, (i % 10) as f64 + 0.5, (i / 10) as f64 + 0.5))
            .collect();
        let e = RegionEntry::new(vr, pois, 0.0);
        let focus = Point::new(5.0, 5.0);
        let shrunk = e.shrink_to_fit(focus, 10);
        assert!(shrunk.len() <= 10);
        assert!(e.vr.contains_rect(&shrunk.vr), "shrunk region escaped");
        assert!(shrunk.vr.contains(focus));
        // POIs in the shrunk entry are exactly the originals inside it.
        for p in &shrunk.pois {
            assert!(shrunk.vr.contains(p.pos));
        }
    }

    #[test]
    fn shrink_noop_when_fitting() {
        let vr = Rect::from_coords(0.0, 0.0, 4.0, 4.0);
        let e = RegionEntry::new(vr, [poi(0, 1.0, 1.0)], 0.0);
        let s = e.shrink_to_fit(Point::new(2.0, 2.0), 5);
        assert_eq!(s.vr, e.vr);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn shrink_with_focus_outside_region_clamps() {
        let vr = Rect::from_coords(0.0, 0.0, 10.0, 1.0);
        let pois: Vec<Poi> = (0..20).map(|i| poi(i, i as f64 * 0.5 + 0.1, 0.5)).collect();
        let e = RegionEntry::new(vr, pois, 0.0);
        let s = e.shrink_to_fit(Point::new(50.0, 0.5), 4);
        assert!(s.len() <= 4);
        assert!(e.vr.contains_rect(&s.vr));
        // The kept POIs are the ones nearest the clamped anchor (right edge).
        assert!(s.pois.iter().all(|p| p.pos.x > 7.0), "{:?}", s.pois);
    }
}
