//! Peer quarantine with seeded exponential backoff and strike decay.
//!
//! The P2P layer used to drop malformed or consistency-failing replies
//! silently and re-contact the same peer on the very next query — a
//! Byzantine or corrupted peer could burn radio time forever. The
//! [`QuarantineLedger`] replaces that with an explicit per-peer record:
//! every rejected reply books a *strike*, and a struck peer is skipped
//! for an exponentially growing window of epochs. Strikes decay with
//! quiet time, so a peer that misbehaved once during a radio glitch is
//! forgiven, while a persistently bad peer backs off toward
//! [`QuarantineConfig::max_epochs`].
//!
//! Backoff jitter is derived by hashing the ledger seed with the peer id
//! and strike count — fully deterministic, so the epoch-sharded parallel
//! simulation replays identically at every thread count. An empty ledger
//! is inert: it never skips anyone and costs one `BTreeMap` lookup per
//! contacted peer.

use std::collections::BTreeMap;

/// Knobs for the quarantine policy. All durations are in *epochs* (the
/// simulation's commit granularity), so decisions align with the
/// deterministic parallel barrier.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QuarantineConfig {
    /// Quarantine length for the first strike (doubles per strike).
    pub base_epochs: u64,
    /// Ceiling on any single quarantine window.
    pub max_epochs: u64,
    /// Quiet epochs needed to forgive one strike.
    pub decay_epochs: u64,
}

impl Default for QuarantineConfig {
    fn default() -> Self {
        QuarantineConfig {
            base_epochs: 2,
            max_epochs: 64,
            decay_epochs: 16,
        }
    }
}

/// Per-peer misbehavior record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct PeerRecord {
    /// Decayed strike count (≥ 1 while the record exists).
    strikes: u32,
    /// Epoch of the most recent strike (decay reference point).
    last_strike: u64,
    /// First epoch at which the peer may be contacted again.
    until: u64,
}

/// A host-local ledger of misbehaving peers.
///
/// Deterministic: the backoff jitter is a pure hash of `(seed, peer,
/// strikes)`, and all state lives in a [`BTreeMap`] so iteration order —
/// and therefore any derived accounting — is stable.
#[derive(Clone, Debug, PartialEq)]
pub struct QuarantineLedger {
    cfg: QuarantineConfig,
    seed: u64,
    records: BTreeMap<usize, PeerRecord>,
}

impl QuarantineLedger {
    /// An empty ledger with the given policy and jitter seed.
    pub fn new(cfg: QuarantineConfig, seed: u64) -> Self {
        QuarantineLedger {
            cfg,
            seed,
            records: BTreeMap::new(),
        }
    }

    /// Whether `peer` is currently quarantined at `epoch`.
    pub fn is_quarantined(&self, peer: usize, epoch: u64) -> bool {
        self.records.get(&peer).is_some_and(|r| epoch < r.until)
    }

    /// Books one strike against `peer` at `epoch` and returns the first
    /// epoch at which the peer may be contacted again.
    ///
    /// Before the new strike lands, old strikes are forgiven at a rate
    /// of one per [`QuarantineConfig::decay_epochs`] quiet epochs since
    /// the last strike; the backoff window is then
    /// `min(base << (strikes - 1), max)` plus a seeded jitter in
    /// `[0, base)` to de-synchronize re-probes across the fleet.
    pub fn strike(&mut self, peer: usize, epoch: u64) -> u64 {
        let cfg = self.cfg;
        let rec = self.records.entry(peer).or_insert(PeerRecord {
            strikes: 0,
            last_strike: epoch,
            until: epoch,
        });
        let quiet = epoch.saturating_sub(rec.last_strike);
        if let Some(forgiven) = quiet.checked_div(cfg.decay_epochs) {
            rec.strikes -= forgiven.min(u64::from(rec.strikes)) as u32;
        }
        rec.strikes = rec.strikes.saturating_add(1);
        rec.last_strike = epoch;
        let shift = (rec.strikes - 1).min(63);
        let window = cfg
            .base_epochs
            .saturating_shl(shift)
            .min(cfg.max_epochs.max(cfg.base_epochs));
        let jitter = if cfg.base_epochs > 1 {
            mix3(self.seed, peer as u64, u64::from(rec.strikes)) % cfg.base_epochs
        } else {
            0
        };
        rec.until = epoch + window + jitter;
        rec.until
    }

    /// Number of peers currently quarantined at `epoch`.
    pub fn quarantined_count(&self, epoch: u64) -> usize {
        self.records.values().filter(|r| epoch < r.until).count()
    }

    /// Whether the ledger has no records at all (inert fast path).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Forgets everything — used when a host crashes and loses its
    /// volatile state.
    pub fn clear(&mut self) {
        self.records.clear();
    }
}

/// Saturating left shift (shifting past the width pins to `u64::MAX`
/// for non-zero values instead of wrapping).
trait SaturatingShl {
    fn saturating_shl(self, shift: u32) -> u64;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, shift: u32) -> u64 {
        if self == 0 {
            0
        } else if shift >= self.leading_zeros() {
            u64::MAX
        } else {
            self << shift
        }
    }
}

/// The workspace's standard splitmix-based avalanche over three words
/// (same construction as the broadcast fault layer).
fn mix3(seed: u64, a: u64, b: u64) -> u64 {
    let mut h = seed ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ b.wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^= h >> 31;
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ledger_is_inert() {
        let led = QuarantineLedger::new(QuarantineConfig::default(), 42);
        assert!(led.is_empty());
        for peer in 0..8 {
            assert!(!led.is_quarantined(peer, 0));
            assert!(!led.is_quarantined(peer, 1000));
        }
        assert_eq!(led.quarantined_count(0), 0);
    }

    #[test]
    fn strikes_back_off_exponentially_to_the_cap() {
        let cfg = QuarantineConfig {
            base_epochs: 2,
            max_epochs: 16,
            decay_epochs: 0, // no forgiveness: pure escalation
        };
        let mut led = QuarantineLedger::new(cfg, 7);
        let mut prev_window = 0;
        for strike in 1..=8u64 {
            let until = led.strike(3, 100);
            let window = until - 100;
            // Window grows (jitter < base can't mask a doubling) until
            // it saturates at max + jitter.
            assert!(
                window >= prev_window || window >= cfg.max_epochs,
                "strike {strike}: window {window} after {prev_window}"
            );
            assert!(window < cfg.max_epochs + cfg.base_epochs);
            prev_window = window;
        }
        assert!(led.is_quarantined(3, 100));
        assert!(!led.is_quarantined(3, 100 + prev_window));
    }

    #[test]
    fn quiet_time_decays_strikes() {
        let cfg = QuarantineConfig {
            base_epochs: 2,
            max_epochs: 64,
            decay_epochs: 4,
        };
        let mut led = QuarantineLedger::new(cfg, 9);
        // Escalate to three strikes...
        for _ in 0..3 {
            led.strike(1, 10);
        }
        let escalated = led.strike(1, 10) - 10;
        // ...then strike once more after a long quiet spell: all prior
        // strikes are forgiven, so the window is back to first-strike
        // size.
        let calm_until = led.strike(1, 1000);
        let calm_window = calm_until - 1000;
        assert!(
            calm_window < escalated,
            "calm {calm_window} vs escalated {escalated}"
        );
        assert!(calm_window >= cfg.base_epochs);
        assert!(calm_window < cfg.base_epochs * 2);
    }

    #[test]
    fn jitter_is_deterministic_and_seed_dependent() {
        let cfg = QuarantineConfig::default();
        let mut a = QuarantineLedger::new(cfg, 1);
        let mut b = QuarantineLedger::new(cfg, 1);
        let mut c = QuarantineLedger::new(cfg, 2);
        let ua = (0..6).map(|p| a.strike(p, 5)).collect::<Vec<_>>();
        let ub = (0..6).map(|p| b.strike(p, 5)).collect::<Vec<_>>();
        let uc = (0..6).map(|p| c.strike(p, 5)).collect::<Vec<_>>();
        assert_eq!(ua, ub, "same seed, same schedule");
        assert_ne!(ua, uc, "different seed perturbs jitter");
        assert_eq!(a, b);
    }

    #[test]
    fn clear_forgets_everything() {
        let mut led = QuarantineLedger::new(QuarantineConfig::default(), 3);
        led.strike(0, 1);
        led.strike(5, 1);
        assert!(led.is_quarantined(0, 1));
        assert_eq!(led.quarantined_count(1), 2);
        led.clear();
        assert!(led.is_empty());
        assert!(!led.is_quarantined(0, 1));
    }

    #[test]
    fn saturating_shl_never_wraps() {
        assert_eq!(0u64.saturating_shl(70), 0);
        assert_eq!(1u64.saturating_shl(3), 8);
        assert_eq!(u64::MAX.saturating_shl(1), u64::MAX);
        assert_eq!(2u64.saturating_shl(63), u64::MAX);
    }
}
