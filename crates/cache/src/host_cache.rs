//! The per-host cache.

use crate::{RegionEntry, ReplacementPolicy};
use airshare_broadcast::{Poi, PoiCategory};
use airshare_geom::{Point, Rect};
use airshare_obs::{CacheRejectReason, NoopRecorder, Recorder, TraceEvent};
use std::collections::HashMap;

/// What [`HostCache::insert`] did with the offered entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The entry (possibly shrunk to capacity) is now cached.
    Stored,
    /// The entry violated the containment invariant and was refused.
    RejectedInconsistent,
    /// The cache has zero capacity for this category.
    RejectedNoCapacity,
}

/// Host state a replacement decision depends on.
#[derive(Clone, Copy, Debug)]
pub struct CacheContext {
    /// The host's current position.
    pub pos: Point,
    /// Unit heading, `None` while paused.
    pub heading: Option<(f64, f64)>,
    /// Simulation time (minutes).
    pub now: f64,
}

/// A mobile host's query-result cache.
///
/// Storage is organized per POI category ("data type"); the capacity
/// (`CSize` in Table 4) bounds the number of *POIs* cached per category.
/// Entries are whole [`RegionEntry`]s and are evicted whole, so the
/// verified-region invariant can never be broken by partial eviction.
#[derive(Clone, Debug)]
pub struct HostCache {
    capacity_per_category: usize,
    max_regions: usize,
    /// Fraction of an existing region that must be covered by an
    /// incoming region for the old entry to be dropped as redundant.
    /// 1.0 = only full containment (strict subsumption).
    subsume_overlap: f64,
    policy: ReplacementPolicy,
    entries: HashMap<PoiCategory, Vec<RegionEntry>>,
}

impl HostCache {
    /// Creates a cache with the given per-category POI capacity. The
    /// number of cached *regions* per category is also bounded (by the
    /// same figure): verified regions that happen to contain zero POIs
    /// are useful knowledge but must not accumulate without limit.
    pub fn new(capacity_per_category: usize, policy: ReplacementPolicy) -> Self {
        Self {
            capacity_per_category,
            max_regions: capacity_per_category,
            subsume_overlap: 1.0,
            policy,
            entries: HashMap::new(),
        }
    }

    /// Enables *anti-fragmentation* subsumption: an existing entry is
    /// dropped when the incoming region covers at least `fraction` of its
    /// area (always sound — dropping an entry only forgets knowledge).
    /// Hosts that query the same neighborhood repeatedly otherwise
    /// accumulate stacks of near-identical regions that bloat share
    /// replies without adding coverage.
    pub fn with_subsume_overlap(mut self, fraction: f64) -> Self {
        self.subsume_overlap = fraction.clamp(0.0, 1.0);
        self
    }

    /// Overrides the per-category bound on the number of cached regions
    /// (default: the POI capacity).
    pub fn with_max_regions(mut self, max_regions: usize) -> Self {
        self.max_regions = max_regions.max(1);
        self
    }

    /// The per-category bound on the number of cached regions.
    pub fn max_regions(&self) -> usize {
        self.max_regions
    }

    /// The per-category capacity in POIs.
    pub fn capacity(&self) -> usize {
        self.capacity_per_category
    }

    /// The configured replacement policy.
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// Cached POI count for a category.
    pub fn poi_count(&self, category: PoiCategory) -> usize {
        self.entries
            .get(&category)
            .map(|v| v.iter().map(RegionEntry::len).sum())
            .unwrap_or(0)
    }

    /// The verified regions currently cached for a category.
    pub fn regions(&self, category: PoiCategory) -> &[RegionEntry] {
        self.entries
            .get(&category)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Inserts a verified entry for `category`, evicting per policy until
    /// the capacity holds. An entry larger than the whole capacity is
    /// shrunk around the host position first.
    ///
    /// Entries whose region is contained in the new entry's region are
    /// dropped (subsumed: their POIs are a subset by the completeness
    /// invariant).
    ///
    /// An entry that violates the containment invariant — a malformed
    /// region, or POIs outside the claimed rectangle — is rejected: a
    /// cache holding it would certify wrong answers and poison every peer
    /// it shares with. The outcome reports which path was taken.
    pub fn insert(
        &mut self,
        category: PoiCategory,
        entry: RegionEntry,
        ctx: &CacheContext,
    ) -> InsertOutcome {
        self.insert_rec(category, entry, ctx, &mut NoopRecorder)
    }

    /// [`Self::insert`], tracing a refused admission into `rec` with its
    /// [`CacheRejectReason`]. Successful stores emit nothing here — the
    /// query layer already traced the data's origin. This is the single
    /// implementation; [`Self::insert`] delegates with a
    /// [`NoopRecorder`].
    pub fn insert_rec(
        &mut self,
        category: PoiCategory,
        entry: RegionEntry,
        ctx: &CacheContext,
        rec: &mut dyn Recorder,
    ) -> InsertOutcome {
        if !entry.is_consistent() {
            rec.record(TraceEvent::CacheRejected {
                reason: CacheRejectReason::Inconsistent,
            });
            return InsertOutcome::RejectedInconsistent;
        }
        if self.capacity_per_category == 0 {
            rec.record(TraceEvent::CacheRejected {
                reason: CacheRejectReason::NoCapacity,
            });
            return InsertOutcome::RejectedNoCapacity;
        }
        let entry = entry.shrink_to_fit(ctx.pos, self.capacity_per_category);
        let list = self.entries.entry(category).or_default();
        let threshold = self.subsume_overlap;
        list.retain(|e| {
            if entry.vr.contains_rect(&e.vr) {
                return false;
            }
            if threshold < 1.0 && e.vr.area() > 0.0 {
                if let Some(i) = entry.vr.intersection(&e.vr) {
                    if i.area() >= threshold * e.vr.area() {
                        return false;
                    }
                }
            }
            true
        });
        // Evict worst-scored existing entries until the new entry fits.
        // The new entry itself is never a victim: it answers the query
        // in flight.
        let budget = self.capacity_per_category.saturating_sub(entry.len());
        while !list.is_empty()
            && (list.iter().map(RegionEntry::len).sum::<usize>() > budget
                || list.len() + 1 > self.max_regions)
        {
            let (worst, _) = list
                .iter()
                .enumerate()
                .map(|(i, e)| (i, self.policy.score(e, ctx.pos, ctx.heading, ctx.now)))
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .expect("non-empty list");
            list.swap_remove(worst);
        }
        list.push(entry);
        InsertOutcome::Stored
    }

    /// Inserts an entry *without* consistency validation, capacity
    /// enforcement, or subsumption. Exists so fault-injection tests can
    /// model a buggy or byzantine peer whose cache holds an invariant-
    /// violating entry; production code paths must use [`Self::insert`].
    pub fn insert_unchecked(&mut self, category: PoiCategory, entry: RegionEntry) {
        self.entries.entry(category).or_default().push(entry);
    }

    /// Sweeps out entries that violate the containment invariant (e.g.
    /// adopted before validation existed, or injected by tests), returning
    /// how many were evicted.
    pub fn purge_inconsistent(&mut self) -> usize {
        let mut evicted = 0;
        for list in self.entries.values_mut() {
            let before = list.len();
            list.retain(RegionEntry::is_consistent);
            evicted += before - list.len();
        }
        evicted
    }

    /// Marks entries intersecting `area` as used at `now` (LRU upkeep).
    pub fn touch(&mut self, category: PoiCategory, area: &Rect, now: f64) {
        if let Some(list) = self.entries.get_mut(&category) {
            for e in list {
                if e.vr.intersects(area) {
                    e.last_used = now;
                }
            }
        }
    }

    /// The share snapshot a peer receives on request: every verified
    /// region with its POIs (the paper's `⟨p.VR, p.O⟩` reply).
    pub fn share_snapshot(&self, category: PoiCategory) -> Vec<(Rect, Vec<Poi>)> {
        self.regions(category)
            .iter()
            .map(|e| (e.vr, e.pois.clone()))
            .collect()
    }

    /// Drops everything (e.g. on simulation reset).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CAT: PoiCategory = PoiCategory::GAS_STATION;

    fn ctx(x: f64, y: f64) -> CacheContext {
        CacheContext {
            pos: Point::new(x, y),
            heading: Some((1.0, 0.0)),
            now: 0.0,
        }
    }

    fn entry(cx: f64, cy: f64, n: u32, id0: u32) -> RegionEntry {
        let vr = Rect::centered_square(Point::new(cx, cy), 1.0);
        let pois = (0..n).map(|i| {
            Poi::new(
                id0 + i,
                Point::new(cx - 0.5 + i as f64 * 0.9 / n.max(1) as f64, cy),
            )
        });
        RegionEntry::new(vr, pois, 0.0)
    }

    #[test]
    fn insert_within_capacity_keeps_everything() {
        let mut c = HostCache::new(10, ReplacementPolicy::default());
        c.insert(CAT, entry(0.0, 0.0, 4, 0), &ctx(0.0, 0.0));
        c.insert(CAT, entry(5.0, 0.0, 4, 10), &ctx(0.0, 0.0));
        assert_eq!(c.poi_count(CAT), 8);
        assert_eq!(c.regions(CAT).len(), 2);
    }

    #[test]
    fn eviction_respects_capacity() {
        let mut c = HostCache::new(6, ReplacementPolicy::DistanceOnly);
        c.insert(CAT, entry(0.0, 0.0, 4, 0), &ctx(0.0, 0.0));
        c.insert(CAT, entry(10.0, 0.0, 4, 10), &ctx(0.0, 0.0));
        assert!(c.poi_count(CAT) <= 6);
        // The far region was evicted? No: the far region was just
        // inserted (protected); the near one got evicted instead.
        assert_eq!(c.regions(CAT).len(), 1);
        assert!(c.regions(CAT)[0].vr.contains(Point::new(10.0, 0.0)));
    }

    #[test]
    fn direction_policy_evicts_region_behind() {
        let mut c = HostCache::new(8, ReplacementPolicy::DirectionDistance);
        // Host at origin heading east.
        c.insert(CAT, entry(5.0, 0.0, 4, 0), &ctx(0.0, 0.0)); // ahead
        c.insert(CAT, entry(-5.0, 0.0, 4, 10), &ctx(0.0, 0.0)); // behind
        // Third insert forces eviction of one old entry.
        c.insert(CAT, entry(0.0, 3.0, 4, 20), &ctx(0.0, 0.0));
        assert!(c.poi_count(CAT) <= 8);
        let kept_ahead = c
            .regions(CAT)
            .iter()
            .any(|e| e.vr.contains(Point::new(5.0, 0.0)));
        let kept_behind = c
            .regions(CAT)
            .iter()
            .any(|e| e.vr.contains(Point::new(-5.0, 0.0)));
        assert!(kept_ahead && !kept_behind);
    }

    #[test]
    fn oversized_entry_is_shrunk_not_rejected() {
        let mut c = HostCache::new(5, ReplacementPolicy::default());
        c.insert(CAT, entry(0.0, 0.0, 20, 0), &ctx(0.0, 0.0));
        assert!(c.poi_count(CAT) <= 5);
        assert_eq!(c.regions(CAT).len(), 1);
        // The shrunk region still covers the host's position (clamped).
        assert!(c.regions(CAT)[0].vr.contains(Point::new(0.0, 0.0)));
    }

    #[test]
    fn subsumed_regions_are_dropped() {
        let mut c = HostCache::new(20, ReplacementPolicy::default());
        let small = RegionEntry::new(
            Rect::from_coords(0.0, 0.0, 1.0, 1.0),
            [Poi::new(0, Point::new(0.5, 0.5))],
            0.0,
        );
        let big = RegionEntry::new(
            Rect::from_coords(-1.0, -1.0, 2.0, 2.0),
            [Poi::new(0, Point::new(0.5, 0.5)), Poi::new(1, Point::new(1.5, 1.5))],
            1.0,
        );
        c.insert(CAT, small, &ctx(0.0, 0.0));
        c.insert(CAT, big, &ctx(0.0, 0.0));
        assert_eq!(c.regions(CAT).len(), 1);
        assert_eq!(c.poi_count(CAT), 2);
    }

    #[test]
    fn categories_are_isolated() {
        let mut c = HostCache::new(4, ReplacementPolicy::default());
        c.insert(PoiCategory(0), entry(0.0, 0.0, 4, 0), &ctx(0.0, 0.0));
        c.insert(PoiCategory(1), entry(5.0, 5.0, 4, 10), &ctx(0.0, 0.0));
        assert_eq!(c.poi_count(PoiCategory(0)), 4);
        assert_eq!(c.poi_count(PoiCategory(1)), 4);
    }

    #[test]
    fn zero_capacity_caches_nothing() {
        let mut c = HostCache::new(0, ReplacementPolicy::default());
        let out = c.insert(CAT, entry(0.0, 0.0, 3, 0), &ctx(0.0, 0.0));
        assert_eq!(out, InsertOutcome::RejectedNoCapacity);
        assert_eq!(c.poi_count(CAT), 0);
        assert!(c.share_snapshot(CAT).is_empty());
    }

    #[test]
    fn inconsistent_entries_are_rejected() {
        let mut c = HostCache::new(10, ReplacementPolicy::default());
        // POI outside the claimed region: only constructible by hand.
        let bad = RegionEntry {
            vr: Rect::from_coords(0.0, 0.0, 1.0, 1.0),
            pois: vec![Poi::new(0, Point::new(5.0, 5.0))],
            created_at: 0.0,
            last_used: 0.0,
        };
        assert!(!bad.is_consistent());
        let out = c.insert(CAT, bad.clone(), &ctx(0.0, 0.0));
        assert_eq!(out, InsertOutcome::RejectedInconsistent);
        assert!(c.regions(CAT).is_empty());

        // Malformed (NaN) region: same fate.
        let nan = RegionEntry {
            vr: Rect {
                x1: f64::NAN,
                y1: 0.0,
                x2: 1.0,
                y2: 1.0,
            },
            pois: vec![],
            created_at: 0.0,
            last_used: 0.0,
        };
        assert_eq!(
            c.insert(CAT, nan, &ctx(0.0, 0.0)),
            InsertOutcome::RejectedInconsistent
        );

        // A proper entry still stores fine.
        assert_eq!(
            c.insert(CAT, entry(0.0, 0.0, 2, 0), &ctx(0.0, 0.0)),
            InsertOutcome::Stored
        );
        assert_eq!(c.regions(CAT).len(), 1);
    }

    #[test]
    fn purge_sweeps_injected_inconsistency() {
        let mut c = HostCache::new(10, ReplacementPolicy::default());
        c.insert(CAT, entry(0.0, 0.0, 2, 0), &ctx(0.0, 0.0));
        c.insert_unchecked(
            CAT,
            RegionEntry {
                vr: Rect::from_coords(0.0, 0.0, 1.0, 1.0),
                pois: vec![Poi::new(9, Point::new(9.0, 9.0))],
                created_at: 0.0,
                last_used: 0.0,
            },
        );
        assert_eq!(c.regions(CAT).len(), 2);
        assert_eq!(c.purge_inconsistent(), 1);
        assert_eq!(c.regions(CAT).len(), 1);
        assert!(c.regions(CAT).iter().all(RegionEntry::is_consistent));
    }

    #[test]
    fn snapshot_matches_contents() {
        let mut c = HostCache::new(10, ReplacementPolicy::default());
        c.insert(CAT, entry(2.0, 2.0, 3, 0), &ctx(2.0, 2.0));
        let snap = c.share_snapshot(CAT);
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].1.len(), 3);
        for p in &snap[0].1 {
            assert!(snap[0].0.contains(p.pos));
        }
    }

    #[test]
    fn lru_touch_protects_hot_entries() {
        let mut c = HostCache::new(8, ReplacementPolicy::Lru);
        c.insert(CAT, entry(0.0, 0.0, 4, 0), &ctx(0.0, 0.0));
        c.insert(CAT, entry(10.0, 10.0, 4, 10), &ctx(0.0, 0.0));
        // Touch the first region, then overflow: second should go.
        let hot = Rect::centered_square(Point::new(0.0, 0.0), 0.5);
        c.touch(CAT, &hot, 5.0);
        let mut ctx2 = ctx(0.0, 0.0);
        ctx2.now = 6.0;
        c.insert(CAT, entry(20.0, 20.0, 4, 20), &ctx2);
        let kept_hot = c
            .regions(CAT)
            .iter()
            .any(|e| e.vr.contains(Point::new(0.0, 0.0)));
        assert!(kept_hot, "recently touched entry evicted under LRU");
    }
}
