//! The per-host cache.
//!
//! Since the fleet-scale storage refactor the cache is handle-based:
//! entries live in an [`EntryArena`] (flat slot + POI-handle pools,
//! generational [`EntryId`] handles) and POI *payloads* live once in the
//! workspace-wide [`PoiTable`] — the cache stores only 4-byte [`PoiId`]s.
//! The public insert API still accepts owned [`RegionEntry`] values (the
//! transfer type peers and the broadcast path produce); accessors that
//! used to return owned `Vec<Poi>` now either yield handles
//! ([`HostCache::entries`], [`HostCache::share_regions`]) or require the
//! table to resolve against ([`HostCacheRef`](crate::HostCacheRef)).

use crate::{EntryArena, EntryId, EntryView, RegionEntry, ReplacementPolicy};
use airshare_broadcast::{Poi, PoiCategory, PoiId, PoiTable};
use airshare_geom::{Point, Rect};
use airshare_obs::{CacheRejectReason, NoopRecorder, Recorder, TraceEvent};

/// What [`HostCache::insert`] did with the offered entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The entry (possibly shrunk to capacity) is now cached.
    Stored,
    /// The entry violated the containment invariant and was refused.
    RejectedInconsistent,
    /// The cache has zero capacity for this category.
    RejectedNoCapacity,
}

/// Host state a replacement decision depends on.
#[derive(Clone, Copy, Debug)]
pub struct CacheContext {
    /// The host's current position.
    pub pos: Point,
    /// Unit heading, `None` while paused.
    pub heading: Option<(f64, f64)>,
    /// Simulation time (minutes).
    pub now: f64,
}

/// A mobile host's query-result cache.
///
/// Storage is organized per POI category ("data type"); the capacity
/// (`CSize` of Table 4) bounds the number of *POIs* cached per category.
/// Entries are whole verified regions and are evicted whole, so the
/// verified-region invariant can never be broken by partial eviction.
#[derive(Debug)]
pub struct HostCache {
    capacity_per_category: usize,
    max_regions: usize,
    /// Fraction of an existing region that must be covered by an
    /// incoming region for the old entry to be dropped as redundant.
    /// 1.0 = only full containment (strict subsumption).
    subsume_overlap: f64,
    policy: ReplacementPolicy,
    arena: EntryArena,
    /// Per-category entry lists, in first-touch category order. A small
    /// ordered Vec beats a HashMap here: real workloads hold one or two
    /// categories, and Vec iteration order is deterministic.
    cats: Vec<(PoiCategory, Vec<EntryId>)>,
}

impl Clone for HostCache {
    fn clone(&self) -> Self {
        Self {
            capacity_per_category: self.capacity_per_category,
            max_regions: self.max_regions,
            subsume_overlap: self.subsume_overlap,
            policy: self.policy,
            arena: self.arena.clone(),
            cats: self.cats.clone(),
        }
    }

    /// Buffer-reusing clone: the simulator refreshes per-epoch cache
    /// snapshots with this, so a warm snapshot allocates nothing.
    fn clone_from(&mut self, source: &Self) {
        self.capacity_per_category = source.capacity_per_category;
        self.max_regions = source.max_regions;
        self.subsume_overlap = source.subsume_overlap;
        self.policy = source.policy;
        self.arena.clone_from(&source.arena);
        // By hand rather than `Vec::clone_from`: tuples have no
        // `clone_from` specialization, so the delegating form would
        // reallocate every per-category entry list on every snapshot.
        self.cats.truncate(source.cats.len());
        let shared = self.cats.len();
        for ((dst_cat, dst_list), (src_cat, src_list)) in
            self.cats.iter_mut().zip(&source.cats)
        {
            *dst_cat = *src_cat;
            dst_list.clone_from(src_list);
        }
        self.cats.extend(source.cats[shared..].iter().cloned());
    }
}

impl HostCache {
    /// Creates a cache with the given per-category POI capacity. The
    /// number of cached *regions* per category is also bounded (by the
    /// same figure): verified regions that happen to contain zero POIs
    /// are useful knowledge but must not accumulate without limit.
    pub fn new(capacity_per_category: usize, policy: ReplacementPolicy) -> Self {
        Self {
            capacity_per_category,
            max_regions: capacity_per_category,
            subsume_overlap: 1.0,
            policy,
            arena: EntryArena::new(),
            cats: Vec::new(),
        }
    }

    /// Enables *anti-fragmentation* subsumption: an existing entry is
    /// dropped when the incoming region covers at least `fraction` of its
    /// area (always sound — dropping an entry only forgets knowledge).
    /// Hosts that query the same neighborhood repeatedly otherwise
    /// accumulate stacks of near-identical regions that bloat share
    /// replies without adding coverage.
    pub fn with_subsume_overlap(mut self, fraction: f64) -> Self {
        self.subsume_overlap = fraction.clamp(0.0, 1.0);
        self
    }

    /// Overrides the per-category bound on the number of cached regions
    /// (default: the POI capacity).
    pub fn with_max_regions(mut self, max_regions: usize) -> Self {
        self.max_regions = max_regions.max(1);
        self
    }

    /// The per-category bound on the number of cached regions.
    pub fn max_regions(&self) -> usize {
        self.max_regions
    }

    /// The per-category capacity in POIs.
    pub fn capacity(&self) -> usize {
        self.capacity_per_category
    }

    /// The configured replacement policy.
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    fn list(&self, category: PoiCategory) -> Option<&[EntryId]> {
        self.cats
            .iter()
            .find(|(c, _)| *c == category)
            .map(|(_, l)| l.as_slice())
    }

    fn cat_index(&mut self, category: PoiCategory) -> usize {
        match self.cats.iter().position(|(c, _)| *c == category) {
            Some(i) => i,
            None => {
                self.cats.push((category, Vec::new()));
                self.cats.len() - 1
            }
        }
    }

    /// Cached POI count for a category.
    pub fn poi_count(&self, category: PoiCategory) -> usize {
        self.list(category)
            .map(|l| l.iter().map(|&e| self.arena.poi_len(e)).sum())
            .unwrap_or(0)
    }

    /// Number of verified regions cached for a category.
    pub fn region_count(&self, category: PoiCategory) -> usize {
        self.list(category).map_or(0, <[EntryId]>::len)
    }

    /// The entry handles cached for a category, in storage order.
    pub fn entry_ids(&self, category: PoiCategory) -> &[EntryId] {
        self.list(category).unwrap_or(&[])
    }

    /// A view of one entry, or `None` for a stale handle.
    pub fn get(&self, id: EntryId) -> Option<EntryView<'_>> {
        self.arena.get(id)
    }

    /// Views of the verified regions cached for a category, in storage
    /// order.
    pub fn entries(
        &self,
        category: PoiCategory,
    ) -> impl Iterator<Item = EntryView<'_>> + '_ {
        self.entry_ids(category)
            .iter()
            .map(|&e| self.arena.get(e).expect("live handle"))
    }

    /// The share reply a peer receives on request: every verified region
    /// with the handles of its POIs (the paper's `⟨p.VR, p.O⟩`, with
    /// `p.O` as [`PoiId`]s to be resolved against the receiver's own
    /// [`PoiTable`]).
    pub fn share_regions(
        &self,
        category: PoiCategory,
    ) -> impl Iterator<Item = (Rect, &[PoiId])> + '_ {
        self.entries(category).map(|v| (v.vr, v.poi_ids))
    }

    /// Resolving view over this cache: borrows the canonical table so
    /// accessors can return owned POIs again.
    pub fn with_table<'a>(&'a self, table: &'a PoiTable) -> crate::HostCacheRef<'a> {
        crate::HostCacheRef::new(self, table)
    }

    /// The verified regions currently cached for a category, resolved to
    /// owned [`RegionEntry`] values through `table`.
    #[deprecated(
        since = "0.2.0",
        note = "POI payloads live in the PoiTable now; iterate `entries()` \
                or use `with_table(...)` (HostCacheRef) to resolve handles"
    )]
    pub fn regions(&self, table: &PoiTable, category: PoiCategory) -> Vec<RegionEntry> {
        self.entries(category).map(|v| v.resolve(table)).collect()
    }

    /// Inserts a verified entry for `category`, evicting per policy until
    /// the capacity holds. An entry larger than the whole capacity is
    /// shrunk around the host position first.
    ///
    /// Entries whose region is contained in the new entry's region are
    /// dropped (subsumed: their POIs are a subset by the completeness
    /// invariant).
    ///
    /// An entry that violates the containment invariant — a malformed
    /// region, or POIs outside the claimed rectangle — is rejected: a
    /// cache holding it would certify wrong answers and poison every peer
    /// it shares with. The outcome reports which path was taken.
    pub fn insert(
        &mut self,
        category: PoiCategory,
        entry: RegionEntry,
        ctx: &CacheContext,
    ) -> InsertOutcome {
        self.insert_rec(category, entry, ctx, &mut NoopRecorder)
    }

    /// [`Self::insert`], tracing a refused admission into `rec` with its
    /// [`CacheRejectReason`]. Successful stores emit nothing here — the
    /// query layer already traced the data's origin.
    ///
    /// The entry's POIs are interned down to [`PoiId`] handles on store;
    /// the consistency check and capacity shrink run on the carried
    /// positions first, exactly as before the handle refactor.
    pub fn insert_rec(
        &mut self,
        category: PoiCategory,
        entry: RegionEntry,
        ctx: &CacheContext,
        rec: &mut dyn Recorder,
    ) -> InsertOutcome {
        if !entry.is_consistent() {
            rec.record(TraceEvent::CacheRejected {
                reason: CacheRejectReason::Inconsistent,
            });
            return InsertOutcome::RejectedInconsistent;
        }
        if self.capacity_per_category == 0 {
            rec.record(TraceEvent::CacheRejected {
                reason: CacheRejectReason::NoCapacity,
            });
            return InsertOutcome::RejectedNoCapacity;
        }
        let entry = entry.shrink_to_fit(ctx.pos, self.capacity_per_category);
        let ci = self.cat_index(category);
        self.make_room(ci, &entry.vr, entry.len(), ctx);
        let eid = self.arena.insert(
            entry.vr,
            entry.created_at,
            entry.last_used,
            entry.pois.iter().map(Poi::handle),
        );
        self.cats[ci].1.push(eid);
        InsertOutcome::Stored
    }

    /// Handle-native insert: stores a verified region given directly as
    /// `(vr, poi handles)`, validating and (if oversized) shrinking
    /// against the canonical `table` instead of carried positions.
    ///
    /// Allocation-free once the cache is warm — this is the path the
    /// zero-steady-state-allocation guarantee is measured on. Behavior
    /// matches [`Self::insert_rec`] fed the resolved entry: the two paths
    /// run the same subsume/evict/shrink arithmetic.
    pub fn insert_ids(
        &mut self,
        table: &PoiTable,
        category: PoiCategory,
        vr: Rect,
        ids: &[PoiId],
        now: f64,
        ctx: &CacheContext,
    ) -> InsertOutcome {
        self.insert_ids_rec(table, category, vr, ids, now, ctx, &mut NoopRecorder)
    }

    /// [`Self::insert_ids`], tracing refused admissions into `rec`.
    #[allow(clippy::too_many_arguments)]
    pub fn insert_ids_rec(
        &mut self,
        table: &PoiTable,
        category: PoiCategory,
        vr: Rect,
        ids: &[PoiId],
        now: f64,
        ctx: &CacheContext,
        rec: &mut dyn Recorder,
    ) -> InsertOutcome {
        let well_formed = vr.x1.is_finite()
            && vr.y1.is_finite()
            && vr.x2.is_finite()
            && vr.y2.is_finite()
            && vr.x1 <= vr.x2
            && vr.y1 <= vr.y2;
        let contained = ids
            .iter()
            .all(|&id| table.get(id).is_some_and(|p| vr.contains(p.pos)));
        if !well_formed || !contained {
            rec.record(TraceEvent::CacheRejected {
                reason: CacheRejectReason::Inconsistent,
            });
            return InsertOutcome::RejectedInconsistent;
        }
        if self.capacity_per_category == 0 {
            rec.record(TraceEvent::CacheRejected {
                reason: CacheRejectReason::NoCapacity,
            });
            return InsertOutcome::RejectedNoCapacity;
        }
        // Shrink around the host if oversized — same binary search as
        // `RegionEntry::shrink_to_fit`, counting through the table.
        let (vr, len) = if ids.len() > self.capacity_per_category {
            let anchor = vr.clamp_point(ctx.pos);
            let scaled = |s: f64| {
                Rect::from_coords(
                    anchor.x + (vr.x1 - anchor.x) * s,
                    anchor.y + (vr.y1 - anchor.y) * s,
                    anchor.x + (vr.x2 - anchor.x) * s,
                    anchor.y + (vr.y2 - anchor.y) * s,
                )
            };
            let count_in = |r: &Rect| {
                ids.iter()
                    .filter(|&&id| table.get(id).is_some_and(|p| r.contains(p.pos)))
                    .count()
            };
            let mut lo = 0.0_f64;
            let mut hi = 1.0_f64;
            for _ in 0..40 {
                let mid = 0.5 * (lo + hi);
                if count_in(&scaled(mid)) <= self.capacity_per_category {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            let r = scaled(lo);
            let n = count_in(&r);
            (r, n)
        } else {
            (vr, ids.len())
        };
        let ci = self.cat_index(category);
        self.make_room(ci, &vr, len, ctx);
        let eid = self.arena.insert(
            vr,
            now,
            now,
            ids.iter()
                .copied()
                .filter(|&id| table.get(id).is_some_and(|p| vr.contains(p.pos))),
        );
        self.cats[ci].1.push(eid);
        InsertOutcome::Stored
    }

    /// Drops subsumed entries, then evicts worst-scored entries until an
    /// incoming entry of `len` POIs fits both budgets. The incoming entry
    /// itself is never a victim: it answers the query in flight.
    fn make_room(&mut self, ci: usize, new_vr: &Rect, len: usize, ctx: &CacheContext) {
        let threshold = self.subsume_overlap;
        let arena = &mut self.arena;
        let list = &mut self.cats[ci].1;
        list.retain(|&eid| {
            let evr = arena.vr(eid);
            let subsumed = new_vr.contains_rect(&evr)
                || (threshold < 1.0
                    && evr.area() > 0.0
                    && new_vr
                        .intersection(&evr)
                        .is_some_and(|i| i.area() >= threshold * evr.area()));
            if subsumed {
                arena.remove(eid);
            }
            !subsumed
        });
        let budget = self.capacity_per_category.saturating_sub(len);
        while !list.is_empty()
            && (list.iter().map(|&e| arena.poi_len(e)).sum::<usize>() > budget
                || list.len() + 1 > self.max_regions)
        {
            let (worst, _) = list
                .iter()
                .enumerate()
                .map(|(i, &e)| {
                    let score = self.policy.score_parts(
                        &arena.vr(e),
                        arena.last_used(e),
                        ctx.pos,
                        ctx.heading,
                        ctx.now,
                    );
                    (i, score)
                })
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .expect("non-empty list");
            let victim = list.swap_remove(worst);
            arena.remove(victim);
        }
    }

    /// Inserts an entry *without* consistency validation, capacity
    /// enforcement, or subsumption. Exists so fault-injection tests can
    /// model a buggy or byzantine peer whose cache holds an invariant-
    /// violating entry; production code paths must use [`Self::insert`].
    ///
    /// Note that only the entry's *claims* (region and POI ids) are
    /// stored: positions resolve through the canonical table, so a
    /// byzantine entry can claim the wrong POIs for a region but cannot
    /// forge POI coordinates.
    pub fn insert_unchecked(&mut self, category: PoiCategory, entry: RegionEntry) {
        let ci = self.cat_index(category);
        let eid = self.arena.insert(
            entry.vr,
            entry.created_at,
            entry.last_used,
            entry.pois.iter().map(Poi::handle),
        );
        self.cats[ci].1.push(eid);
    }

    /// Sweeps out entries that violate the containment invariant against
    /// the canonical table (e.g. injected by tests, or holding handles
    /// the table does not know), returning how many were evicted.
    pub fn purge_inconsistent(&mut self, table: &PoiTable) -> usize {
        let mut evicted = 0;
        let arena = &mut self.arena;
        for (_, list) in &mut self.cats {
            list.retain(|&eid| {
                let ok = arena.get(eid).expect("live handle").is_consistent(table);
                if !ok {
                    arena.remove(eid);
                    evicted += 1;
                }
                ok
            });
        }
        evicted
    }

    /// Marks entries intersecting `area` as used at `now` (LRU upkeep).
    pub fn touch(&mut self, category: PoiCategory, area: &Rect, now: f64) {
        if let Some(i) = self.cats.iter().position(|(c, _)| *c == category) {
            let (_, list) = &self.cats[i];
            for k in 0..list.len() {
                let eid = self.cats[i].1[k];
                if self.arena.vr(eid).intersects(area) {
                    self.arena.set_last_used(eid, now);
                }
            }
        }
    }

    /// The share snapshot as owned `(region, POIs)` pairs, resolved
    /// through `table`.
    #[deprecated(
        since = "0.2.0",
        note = "peers exchange PoiId handles now; use `share_regions()` \
                or `with_table(...).share_snapshot(...)`"
    )]
    pub fn share_snapshot(
        &self,
        table: &PoiTable,
        category: PoiCategory,
    ) -> Vec<(Rect, Vec<Poi>)> {
        self.with_table(table).share_snapshot(category)
    }

    /// Drops everything (e.g. on simulation reset).
    pub fn clear(&mut self) {
        self.cats.clear();
        self.arena.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CAT: PoiCategory = PoiCategory::GAS_STATION;

    fn ctx(x: f64, y: f64) -> CacheContext {
        CacheContext {
            pos: Point::new(x, y),
            heading: Some((1.0, 0.0)),
            now: 0.0,
        }
    }

    fn entry(cx: f64, cy: f64, n: u32, id0: u32) -> RegionEntry {
        let vr = Rect::centered_square(Point::new(cx, cy), 1.0);
        let pois = (0..n).map(|i| {
            Poi::new(
                id0 + i,
                Point::new(cx - 0.5 + i as f64 * 0.9 / n.max(1) as f64, cy),
            )
        });
        RegionEntry::new(vr, pois, 0.0)
    }

    fn covers(c: &HostCache, x: f64, y: f64) -> bool {
        c.entries(CAT).any(|e| e.vr.contains(Point::new(x, y)))
    }

    #[test]
    fn insert_within_capacity_keeps_everything() {
        let mut c = HostCache::new(10, ReplacementPolicy::default());
        c.insert(CAT, entry(0.0, 0.0, 4, 0), &ctx(0.0, 0.0));
        c.insert(CAT, entry(5.0, 0.0, 4, 10), &ctx(0.0, 0.0));
        assert_eq!(c.poi_count(CAT), 8);
        assert_eq!(c.region_count(CAT), 2);
    }

    #[test]
    fn eviction_respects_capacity() {
        let mut c = HostCache::new(6, ReplacementPolicy::DistanceOnly);
        c.insert(CAT, entry(0.0, 0.0, 4, 0), &ctx(0.0, 0.0));
        c.insert(CAT, entry(10.0, 0.0, 4, 10), &ctx(0.0, 0.0));
        assert!(c.poi_count(CAT) <= 6);
        // The far region was evicted? No: the far region was just
        // inserted (protected); the near one got evicted instead.
        assert_eq!(c.region_count(CAT), 1);
        assert!(covers(&c, 10.0, 0.0));
    }

    #[test]
    fn direction_policy_evicts_region_behind() {
        let mut c = HostCache::new(8, ReplacementPolicy::DirectionDistance);
        // Host at origin heading east.
        c.insert(CAT, entry(5.0, 0.0, 4, 0), &ctx(0.0, 0.0)); // ahead
        c.insert(CAT, entry(-5.0, 0.0, 4, 10), &ctx(0.0, 0.0)); // behind
        // Third insert forces eviction of one old entry.
        c.insert(CAT, entry(0.0, 3.0, 4, 20), &ctx(0.0, 0.0));
        assert!(c.poi_count(CAT) <= 8);
        assert!(covers(&c, 5.0, 0.0) && !covers(&c, -5.0, 0.0));
    }

    #[test]
    fn oversized_entry_is_shrunk_not_rejected() {
        let mut c = HostCache::new(5, ReplacementPolicy::default());
        c.insert(CAT, entry(0.0, 0.0, 20, 0), &ctx(0.0, 0.0));
        assert!(c.poi_count(CAT) <= 5);
        assert_eq!(c.region_count(CAT), 1);
        // The shrunk region still covers the host's position (clamped).
        assert!(covers(&c, 0.0, 0.0));
    }

    #[test]
    fn subsumed_regions_are_dropped() {
        let mut c = HostCache::new(20, ReplacementPolicy::default());
        let small = RegionEntry::new(
            Rect::from_coords(0.0, 0.0, 1.0, 1.0),
            [Poi::new(0, Point::new(0.5, 0.5))],
            0.0,
        );
        let big = RegionEntry::new(
            Rect::from_coords(-1.0, -1.0, 2.0, 2.0),
            [Poi::new(0, Point::new(0.5, 0.5)), Poi::new(1, Point::new(1.5, 1.5))],
            1.0,
        );
        c.insert(CAT, small, &ctx(0.0, 0.0));
        c.insert(CAT, big, &ctx(0.0, 0.0));
        assert_eq!(c.region_count(CAT), 1);
        assert_eq!(c.poi_count(CAT), 2);
    }

    #[test]
    fn categories_are_isolated() {
        let mut c = HostCache::new(4, ReplacementPolicy::default());
        c.insert(PoiCategory(0), entry(0.0, 0.0, 4, 0), &ctx(0.0, 0.0));
        c.insert(PoiCategory(1), entry(5.0, 5.0, 4, 10), &ctx(0.0, 0.0));
        assert_eq!(c.poi_count(PoiCategory(0)), 4);
        assert_eq!(c.poi_count(PoiCategory(1)), 4);
    }

    #[test]
    fn zero_capacity_caches_nothing() {
        let mut c = HostCache::new(0, ReplacementPolicy::default());
        let out = c.insert(CAT, entry(0.0, 0.0, 3, 0), &ctx(0.0, 0.0));
        assert_eq!(out, InsertOutcome::RejectedNoCapacity);
        assert_eq!(c.poi_count(CAT), 0);
        assert_eq!(c.share_regions(CAT).count(), 0);
    }

    #[test]
    fn inconsistent_entries_are_rejected() {
        let mut c = HostCache::new(10, ReplacementPolicy::default());
        // POI outside the claimed region: only constructible by hand.
        let bad = RegionEntry {
            vr: Rect::from_coords(0.0, 0.0, 1.0, 1.0),
            pois: vec![Poi::new(0, Point::new(5.0, 5.0))],
            created_at: 0.0,
            last_used: 0.0,
        };
        assert!(!bad.is_consistent());
        let out = c.insert(CAT, bad.clone(), &ctx(0.0, 0.0));
        assert_eq!(out, InsertOutcome::RejectedInconsistent);
        assert_eq!(c.region_count(CAT), 0);

        // Malformed (NaN) region: same fate.
        let nan = RegionEntry {
            vr: Rect {
                x1: f64::NAN,
                y1: 0.0,
                x2: 1.0,
                y2: 1.0,
            },
            pois: vec![],
            created_at: 0.0,
            last_used: 0.0,
        };
        assert_eq!(
            c.insert(CAT, nan, &ctx(0.0, 0.0)),
            InsertOutcome::RejectedInconsistent
        );

        // A proper entry still stores fine.
        assert_eq!(
            c.insert(CAT, entry(0.0, 0.0, 2, 0), &ctx(0.0, 0.0)),
            InsertOutcome::Stored
        );
        assert_eq!(c.region_count(CAT), 1);
    }

    #[test]
    fn purge_sweeps_injected_inconsistency() {
        let good = entry(0.0, 0.0, 2, 0);
        let table = PoiTable::from_pois(
            good.pois
                .iter()
                .copied()
                .chain([Poi::new(9, Point::new(9.0, 9.0))]),
        );
        let mut c = HostCache::new(10, ReplacementPolicy::default());
        c.insert(CAT, good, &ctx(0.0, 0.0));
        c.insert_unchecked(
            CAT,
            RegionEntry {
                vr: Rect::from_coords(0.0, 0.0, 1.0, 1.0),
                pois: vec![Poi::new(9, Point::new(9.0, 9.0))],
                created_at: 0.0,
                last_used: 0.0,
            },
        );
        assert_eq!(c.region_count(CAT), 2);
        assert_eq!(c.purge_inconsistent(&table), 1);
        assert_eq!(c.region_count(CAT), 1);
        assert!(c.entries(CAT).all(|e| e.is_consistent(&table)));
    }

    #[test]
    fn snapshot_matches_contents() {
        let e = entry(2.0, 2.0, 3, 0);
        let table = PoiTable::from_pois(e.pois.iter().copied());
        let mut c = HostCache::new(10, ReplacementPolicy::default());
        c.insert(CAT, e, &ctx(2.0, 2.0));
        let snap = c.with_table(&table).share_snapshot(CAT);
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].1.len(), 3);
        for p in &snap[0].1 {
            assert!(snap[0].0.contains(p.pos));
        }
        // The handle-level share carries the same membership.
        let (vr, ids) = c.share_regions(CAT).next().unwrap();
        assert_eq!(vr, snap[0].0);
        assert_eq!(ids.len(), 3);
    }

    #[test]
    fn lru_touch_protects_hot_entries() {
        let mut c = HostCache::new(8, ReplacementPolicy::Lru);
        c.insert(CAT, entry(0.0, 0.0, 4, 0), &ctx(0.0, 0.0));
        c.insert(CAT, entry(10.0, 10.0, 4, 10), &ctx(0.0, 0.0));
        // Touch the first region, then overflow: second should go.
        let hot = Rect::centered_square(Point::new(0.0, 0.0), 0.5);
        c.touch(CAT, &hot, 5.0);
        let mut ctx2 = ctx(0.0, 0.0);
        ctx2.now = 6.0;
        c.insert(CAT, entry(20.0, 20.0, 4, 20), &ctx2);
        assert!(covers(&c, 0.0, 0.0), "recently touched entry evicted under LRU");
    }

    #[test]
    fn insert_ids_matches_insert_on_same_data() {
        let pois: Vec<Poi> = (0..12)
            .map(|i| Poi::new(i, Point::new(i as f64 * 0.1, 0.5)))
            .collect();
        let table = PoiTable::from_pois(pois.iter().copied());
        let ids: Vec<PoiId> = pois.iter().map(Poi::handle).collect();
        let vr = Rect::from_coords(0.0, 0.0, 1.2, 1.0);

        let mut a = HostCache::new(5, ReplacementPolicy::default());
        a.insert(CAT, RegionEntry::new(vr, pois.iter().copied(), 3.0), &ctx(0.6, 0.5));
        let mut b = HostCache::new(5, ReplacementPolicy::default());
        b.insert_ids(&table, CAT, vr, &ids, 3.0, &ctx(0.6, 0.5));

        assert_eq!(a.region_count(CAT), b.region_count(CAT));
        let va = a.entries(CAT).next().unwrap();
        let vb = b.entries(CAT).next().unwrap();
        assert_eq!(va.vr, vb.vr);
        assert_eq!(va.poi_ids, vb.poi_ids);
        assert_eq!(va.created_at, vb.created_at);
    }
}
