//! Mobile-host result caches with *verified-region* semantics.
//!
//! The currency of the paper's P2P sharing is the pair `⟨p.VR, p.O⟩`: a
//! peer's **verified region** (an MBR within which the peer knows *every*
//! POI, because the data came from the authoritative broadcast) together
//! with the POIs inside it. Lemma 3.1's soundness rests entirely on that
//! invariant — if a cache could hold a region while missing one of its
//! POIs, SBNN would certify wrong answers. This crate therefore treats
//! the *(region, POI-set)* pair as the atomic cache entry:
//!
//! * [`RegionEntry`] — one verified region and exactly the POIs inside it.
//! * [`HostCache`] — per-category storage under a POI-count capacity
//!   (`CSize` of Table 4), with whole-entry eviction so soundness can
//!   never be violated by partial eviction. Oversized incoming entries
//!   are *shrunk around the host* (region scaled down until its POI count
//!   fits), preserving the invariant.
//! * [`ReplacementPolicy`] — the paper's direction + distance policy
//!   (after Ren & Dunham's semantic caching), plus distance-only and LRU
//!   baselines for the ablation benchmarks.
//! * [`QuarantineLedger`] — per-host memory of misbehaving peers, with
//!   seeded exponential backoff and strike decay, so the share protocol
//!   stops re-contacting peers that return malformed data.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod entry;
mod host_cache;
mod policy;
mod quarantine;
mod view;

pub use arena::{EntryArena, EntryId, EntryView};
pub use entry::RegionEntry;
pub use host_cache::{CacheContext, HostCache, InsertOutcome};
pub use policy::ReplacementPolicy;
pub use quarantine::{QuarantineConfig, QuarantineLedger};
pub use view::HostCacheRef;
