//! Full-simulator trend tests: the qualitative claims of the paper's
//! evaluation must hold on small, fast configurations.
//!
//! These are the repo's guard rails for the figures: if a change flips
//! "more transmission range ⇒ more peer-solved queries" or breaks
//! exactness under validation, these tests go red long before anyone
//! reruns the full experiment suite.

use airshare::prelude::*;
use airshare_sim::params;

fn base(kind: QueryKind, seed: u64) -> SimConfig {
    let p = params::la_city().scaled(0.005);
    let mut cfg = SimConfig::paper_defaults(p, kind, seed);
    cfg.warmup_min = 90.0;
    cfg.measure_min = 30.0;
    cfg
}

fn run(cfg: SimConfig) -> SimReport {
    Simulation::try_new(cfg).expect("valid config").run()
}

#[test]
fn more_range_means_more_peer_answers() {
    let pct = |range: f64| {
        let mut cfg = base(QueryKind::Knn, 3);
        cfg.params.tx_range_m = range;
        let r = run(cfg);
        r.queries.pct_peers() + r.queries.pct_approx()
    };
    let lo = pct(10.0);
    let hi = pct(200.0);
    assert!(
        hi > lo + 5.0,
        "200 m ({hi:.1}%) should beat 10 m ({lo:.1}%) clearly"
    );
}

#[test]
fn denser_region_solves_more_from_peers() {
    // Needs a world noticeably larger than one cache's coverage area
    // (CSize/λ), or self-coverage saturates both sets — hence the larger
    // scale factor here (see EXPERIMENTS.md on scaling limits).
    let pct = |p: airshare_sim::ParamSet| {
        let mut cfg = SimConfig::paper_defaults(p.scaled(0.01), QueryKind::Knn, 4);
        cfg.warmup_min = 120.0;
        cfg.measure_min = 30.0;
        let r = run(cfg);
        r.queries.pct_peers() + r.queries.pct_approx()
    };
    let la = pct(params::la_city());
    let rc = pct(params::riverside_county());
    assert!(
        la > rc + 5.0,
        "LA ({la:.1}%) should clearly beat Riverside ({rc:.1}%)"
    );
}

#[test]
fn moderate_windows_largely_covered_by_peers() {
    // Figure 15's headline: "with a relatively small query window (less
    // than 3%), over 50% of the window queries can be fulfilled through
    // our sharing mechanism". (The paper's *slope* at the small end
    // needs full-scale cache truncation — window POI content ∝ area is
    // quantized near zero at laptop scale; see EXPERIMENTS.md.)
    let pct = |wpct: f64| {
        let mut cfg = SimConfig::paper_defaults(
            params::la_city().scaled(0.02),
            QueryKind::Window,
            5,
        );
        cfg.warmup_min = 150.0;
        cfg.measure_min = 40.0;
        cfg.params.window_pct = wpct;
        run(cfg).queries.pct_peers()
    };
    assert!(pct(3.0) > 50.0, "3% windows under-covered: {:.1}%", pct(3.0));
    assert!(pct(1.0) > 50.0, "1% windows under-covered: {:.1}%", pct(1.0));
}

#[test]
fn validation_holds_across_workloads_and_policies() {
    for kind in [QueryKind::Knn, QueryKind::Window] {
        for policy in [
            ReplacementPolicy::DirectionDistance,
            ReplacementPolicy::DistanceOnly,
            ReplacementPolicy::Lru,
        ] {
            let mut cfg = base(kind, 6);
            cfg.warmup_min = 30.0;
            cfg.measure_min = 20.0;
            cfg.policy = policy;
            cfg.validate = true;
            let r = run(cfg);
            assert_eq!(
                r.exact_mismatches, 0,
                "wrong exact answers under {kind:?}/{policy:?}"
            );
            assert!(r.queries.total > 0);
        }
    }
}

#[test]
fn bound_filtering_reduces_broadcast_traffic() {
    // Per-query the filtered bucket set is a subset of the cold one
    // (asserted inside the engine in debug builds); at run level the
    // accumulated savings must be strictly positive with filtering on
    // and zero with it off (the fallback then degenerates to a cold
    // fetch plus peer-known merging).
    let saved = |on: bool| {
        // A finer-grained channel (many small buckets) so partial
        // knowledge can actually skip buckets — the tiny test world
        // otherwise fits in two buckets and nothing is skippable.
        let mut cfg = base(QueryKind::Knn, 7);
        cfg.params = params::la_city().scaled(0.01);
        cfg.bucket_capacity = 2;
        cfg.use_bound_filtering = on;
        run(cfg).filter_saved_buckets
    };
    let on = saved(true);
    let off = saved(false);
    assert!(on > 0, "bounds never saved a bucket");
    assert!(on >= off, "filtering on ({on}) saved less than off ({off})");
}

#[test]
fn window_reduction_reduces_broadcast_traffic() {
    let buckets = |on: bool| {
        let mut cfg = base(QueryKind::Window, 8);
        cfg.warmup_min = 120.0;
        cfg.use_window_reduction = on;
        run(cfg).broadcast_buckets.mean()
    };
    let with = buckets(true);
    let without = buckets(false);
    assert!(
        with <= without + 1e-9,
        "reduction ({with:.2}) should not fetch more than whole windows ({without:.2})"
    );
}

#[test]
fn unsound_vr_corruption_is_rare_but_possible() {
    // Statistically, the paper's loose circumscribed-MBR reading almost
    // never misleads at these densities (false verification needs two
    // POIs inside a corrupted corner's small verified zone) — itself a
    // reproduction finding, recorded in EXPERIMENTS.md. The *mechanism*
    // is demonstrated deterministically: a cache entry whose region
    // claims more than its POI list covers makes NNV certify a wrong
    // nearest neighbor.
    use airshare::core::{nnv, MergedRegion};
    // The region claims [-1,1]² is fully known but the POI list is
    // missing m = (0.05, 0.05) — exactly what a circumscribed-MBR corner
    // does to the completeness invariant.
    let corrupted = MergedRegion::from_regions([(
        Rect::from_coords(-1.0, -1.0, 1.0, 1.0),
        vec![Poi::new(0, Point::new(0.3, 0.0))],
    )]);
    let heap = nnv(Point::ORIGIN, 1, &corrupted, 1.0);
    assert!(heap.is_fulfilled(), "NNV trusts the region");
    assert_eq!(heap.entries()[0].poi.id, 0, "certified the wrong NN");
    // The sound pipeline under validation never mis-verifies.
    let mut cfg = base(QueryKind::Knn, 9);
    cfg.vr_policy = airshare::core::VrPolicy::InscribedBall;
    cfg.validate = true;
    assert_eq!(run(cfg).exact_mismatches, 0);
}

#[test]
fn calibration_predictions_are_informative() {
    let mut cfg = base(QueryKind::Knn, 10);
    cfg.validate = true;
    cfg.min_correctness = 0.05;
    let r = run(cfg);
    // Enough approximate answers to say something.
    assert!(
        r.calibration.len() > 30,
        "only {} approximate answers",
        r.calibration.len()
    );
    // High-confidence answers should be right more often than
    // low-confidence ones.
    let acc = |lo: f64, hi: f64| {
        let v: Vec<bool> = r
            .calibration
            .iter()
            .filter(|(p, _)| *p >= lo && *p < hi)
            .map(|&(_, ok)| ok)
            .collect();
        if v.is_empty() {
            None
        } else {
            Some(v.iter().filter(|&&b| b).count() as f64 / v.len() as f64)
        }
    };
    if let (Some(hi), Some(lo)) = (acc(0.8, 1.01), acc(0.05, 0.5)) {
        assert!(
            hi >= lo,
            "high-confidence accuracy {hi:.2} below low-confidence {lo:.2}"
        );
    }
}
