//! Fleet-level chaos guarantees (DESIGN.md §12):
//!
//! 1. Host churn, outage windows, and peer quarantine never break the
//!    parallel runtime: chaos runs are bit-identical across 1/2/4/8
//!    threads.
//! 2. An all-zero chaos config is byte-identical to the pre-chaos
//!    baseline — the chaos layers are free when disabled.
//! 3. The chaos oracle holds: exact answers match ground truth, stale
//!    answers respect their staleness bound, and every measured query
//!    gets exactly one quality grade.

use airshare::prelude::*;
use airshare::sim::ChurnConfig;
use proptest::prelude::*;

fn tiny(seed: u64) -> SimConfig {
    let p = params::synthetic_suburbia().scaled(0.004);
    let mut cfg = SimConfig::paper_defaults(p, QueryKind::Knn, seed);
    cfg.warmup_min = 10.0;
    cfg.measure_min = 10.0;
    cfg.hilbert_order = 6;
    cfg.validate = true;
    cfg
}

/// Everything at once: churn, two outage windows inside the measured
/// phase (epochs are 0.25 min, warm-up ends at epoch 40), lossy
/// channel, dropped and malformed peer replies.
fn chaotic(seed: u64) -> SimConfig {
    let mut cfg = tiny(seed);
    cfg.churn = ChurnConfig {
        crash_prob: 0.04,
        restart_prob: 0.4,
        late_join_frac: 0.2,
    };
    cfg.outages = vec![(44, 52), (64, 70)];
    cfg.faults.bucket_loss_prob = 0.05;
    cfg.faults.retry_budget = 2;
    cfg.faults.peer_drop_prob = 0.05;
    cfg.faults.peer_malform_prob = 0.1;
    cfg
}

#[test]
fn chaos_oracle_holds_under_full_fault_mix() {
    for kind in [QueryKind::Knn, QueryKind::Window] {
        let mut cfg = chaotic(5);
        cfg.query_kind = kind;
        let r = Simulation::try_new(cfg).expect("valid config").run();
        assert!(r.queries.total > 0, "{kind:?}: nothing measured");
        // Every measured query got exactly one quality grade.
        assert_eq!(r.quality.total(), r.queries.total, "{kind:?}");
        // The chaos actually happened.
        assert!(r.hosts_crashed > 0, "{kind:?}: churn crashed nobody");
        assert!(r.hosts_restarted > 0, "{kind:?}: nobody came back");
        assert!(
            r.quality.stale + r.quality.failed > 0,
            "{kind:?}: outages never forced a degraded answer"
        );
        assert!(r.outage_resyncs > 0, "{kind:?}: nobody resynchronized");
        assert!(
            r.faults.quarantine_strikes > 0,
            "{kind:?}: malforming peers were never struck"
        );
        // ...and correctness survived it: exact answers are exact, and
        // non-exact answers stayed within their declared bound.
        assert_eq!(r.exact_mismatches, 0, "{kind:?}");
        assert_eq!(r.bound_violations, 0, "{kind:?}");
        if r.quality.stale > 0 {
            assert!(r.stale_age_min_max >= r.mean_stale_age_min());
            assert!(r.mean_stale_age_min() >= 0.0);
        }
    }
}

#[test]
fn fault_free_runs_answer_everything_exactly() {
    let r = Simulation::try_new(tiny(9)).expect("valid config").run();
    assert!(r.queries.total > 0);
    assert_eq!(r.quality.exact, r.queries.total);
    assert_eq!(r.quality.stale + r.quality.failed + r.quality.degraded, 0);
    assert_eq!(r.hosts_crashed, 0);
    assert_eq!(r.outage_resyncs, 0);
    assert_eq!(r.faults.peers_quarantined, 0);
}

#[test]
fn zeroed_chaos_config_is_byte_identical_to_baseline() {
    // The baseline config never mentions chaos; the "zeroed" one spells
    // every knob out at its inert value. Both reports must agree on
    // every byte of their Debug rendering.
    let baseline = Simulation::try_new(tiny(17)).expect("valid config").run();
    let mut cfg = tiny(17);
    cfg.churn = ChurnConfig {
        crash_prob: 0.0,
        restart_prob: 0.0,
        late_join_frac: 0.0,
    };
    cfg.outages = Vec::new();
    cfg.faults.peer_malform_prob = 0.0;
    let zeroed = Simulation::try_new(cfg).expect("valid config").run();
    assert_eq!(zeroed, baseline);
    assert_eq!(format!("{zeroed:?}"), format!("{baseline:?}"));
}

#[test]
fn chaos_metrics_reach_the_trace_snapshot() {
    let r = Simulation::try_new(chaotic(23))
        .expect("valid config")
        .run_metrics();
    let m = r.metrics.expect("run_metrics fills this");
    // The recorder sees warm-up traffic too, so its counters can only
    // be at least the report's measured-window counters.
    assert!(m.answers_exact + m.answers_degraded + m.answers_stale + m.answers_failed >= r.quality.total());
    assert!(m.hosts_crashed_total >= r.hosts_crashed);
    assert!(m.hosts_restarted_total >= r.hosts_restarted);
    assert!(m.resyncs_total >= r.outage_resyncs);
    assert!(m.outages_blocked_total > 0, "no OutageBlocked events traced");
    assert!(m.quarantine_strikes_total > 0, "no quarantine events traced");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn chaos_runs_are_bit_identical_across_thread_counts(seed in 0u64..1_000) {
        let sequential = Simulation::try_new(chaotic(seed))
            .expect("valid config")
            .run();
        prop_assert!(sequential.queries.total > 0);
        for threads in [1usize, 2, 4, 8] {
            let parallel = Simulation::try_new(chaotic(seed))
                .expect("valid config")
                .run_parallel(&ExecPool::fixed(threads));
            prop_assert_eq!(&parallel, &sequential, "diverged at {} threads", threads);
            // Debug covers every field, including ones a future
            // PartialEq might miss.
            prop_assert_eq!(
                format!("{:?}", parallel),
                format!("{:?}", sequential),
                "debug rendering diverged at {} threads", threads
            );
        }
    }
}
