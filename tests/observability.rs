//! Observability guarantees (DESIGN.md §9):
//!
//! 1. Tracing is deterministic — two same-seed runs produce byte-identical
//!    JSONL event streams.
//! 2. Recording is zero-cost on results — a run with the inert
//!    [`NoopRecorder`] returns a report equal to a plain `run()`.
//! 3. `run_metrics` fills the snapshot, and its counters agree with the
//!    report's own accounting.

use airshare::prelude::*;

fn tiny(seed: u64) -> SimConfig {
    let p = params::synthetic_suburbia().scaled(0.004);
    let mut cfg = SimConfig::paper_defaults(p, QueryKind::Knn, seed);
    cfg.warmup_min = 10.0;
    cfg.measure_min = 10.0;
    cfg.hilbert_order = 6;
    cfg
}

fn faulty(seed: u64) -> SimConfig {
    let mut cfg = tiny(seed);
    cfg.faults.bucket_loss_prob = 0.1;
    cfg.faults.peer_drop_prob = 0.1;
    cfg.faults.retry_budget = 4;
    cfg
}

#[test]
fn same_seed_traces_are_byte_identical() {
    let run_trace = || {
        let mut rec = JsonlTraceRecorder::new();
        let report = Simulation::try_new(faulty(5))
            .expect("valid config")
            .run_with(&mut rec);
        (rec.into_string(), report)
    };
    let (a, ra) = run_trace();
    let (b, rb) = run_trace();
    assert!(!a.is_empty(), "trace captured no events");
    assert_eq!(a, b, "same seed produced different traces");
    assert_eq!(ra, rb, "same seed produced different reports");
    // Every line is a JSON object carrying the query id and event name.
    for line in a.lines() {
        assert!(
            line.starts_with("{\"query\":") && line.ends_with('}'),
            "malformed trace line: {line}"
        );
        assert!(line.contains("\"event\":\""), "missing event field: {line}");
    }
}

#[test]
fn noop_recorder_changes_nothing() {
    let plain = Simulation::try_new(faulty(6)).expect("valid config").run();
    let mut noop = NoopRecorder;
    let traced = Simulation::try_new(faulty(6))
        .expect("valid config")
        .run_with(&mut noop);
    assert_eq!(plain, traced, "NoopRecorder perturbed the simulation");

    // A *recording* recorder must not perturb it either: tracing only
    // observes, it never steers.
    let mut rec = JsonlTraceRecorder::new();
    let observed = Simulation::try_new(faulty(6))
        .expect("valid config")
        .run_with(&mut rec);
    assert_eq!(plain, observed, "JsonlTraceRecorder perturbed the simulation");
}

#[test]
fn run_metrics_fills_a_consistent_snapshot() {
    let report = Simulation::try_new(faulty(7))
        .expect("valid config")
        .run_metrics();
    let m = report.metrics.as_ref().expect("run_metrics sets metrics");

    // Resolution counters agree with the report's QueryStats for the
    // measured window (the snapshot also sees warm-up queries, so it can
    // only be larger).
    assert!(m.queries_total >= report.queries.total);
    assert_eq!(
        m.queries_total,
        m.resolved_peers_verified + m.resolved_peers_approximate + m.resolved_broadcast,
        "resolution kinds must partition resolved queries"
    );
    assert!(m.probes_total >= m.resolved_broadcast);
    assert!(m.frames_lost_total >= report.faults.buckets_lost_total);
    assert!(m.tuning.count > 0 && m.latency.count > 0);
    assert!(m.latency.p50 <= m.latency.p95 && m.latency.p95 <= m.latency.p99);
    assert!(m.latency.p99 <= m.latency.max);

    // The plain report part matches an untraced run of the same seed.
    let mut plain = Simulation::try_new(faulty(7)).expect("valid config").run();
    plain.metrics = report.metrics.clone();
    assert_eq!(plain, report);
}
