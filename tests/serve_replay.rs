//! End-to-end service replay parity: a workload recorded by the
//! deterministic simulator, driven through the full `airshare-serve`
//! stack — sessions, bounded admission, lockstep barriers, worker pool,
//! reply channels — must produce identical answers (POI ids +
//! `AnswerQuality` per nonce) *and* a field-for-field identical
//! `SimReport` after drain. The engine-level version of this contract
//! lives in `crates/sim/tests/record_replay.rs`; this one adds the
//! whole service between the client and the world.

use airshare_serve::{replay, QueryRequest, QueryTag, ServeConfig, ServeError, Service};
use airshare_sim::{
    params, ChurnConfig, FaultConfig, QueryKind, QuerySpec, SimConfig, Simulation,
};

fn base_cfg(kind: QueryKind, seed: u64) -> SimConfig {
    let mut p = params::la_city().scaled(0.005);
    p.cache_size = 30;
    let mut cfg = SimConfig::paper_defaults(p, kind, seed);
    cfg.warmup_min = 5.0;
    cfg.measure_min = 10.0;
    cfg.validate = true;
    cfg.hilbert_order = 6;
    cfg
}

fn assert_service_parity(cfg: SimConfig, serve_cfg: impl FnOnce(SimConfig) -> ServeConfig) {
    let (sim_report, trace) = Simulation::try_new(cfg.clone()).unwrap().run_recording();
    assert!(!trace.queries.is_empty());

    let service = Service::start(serve_cfg(cfg)).unwrap();
    let outcome = replay(&service.handle(), &trace).unwrap();
    let report = service.drain();

    assert!(outcome.is_clean(), "replay diverged: {outcome:?}");
    assert_eq!(outcome.answered, trace.queries.len() as u64);
    assert_eq!(
        report.report, sim_report,
        "service report diverged from the recording run's"
    );
    assert_eq!(report.metrics.drains_total, 1, "drain not recorded");
    assert_eq!(report.accepted, outcome.submitted);
    assert!(report.metrics.queries_admitted_total >= outcome.submitted);
    assert!(report.metrics.epochs_committed_total as usize >= trace.epochs.len());
}

#[test]
fn service_replay_matches_simulator_knn() {
    assert_service_parity(base_cfg(QueryKind::Knn, 42), ServeConfig::lockstep);
}

#[test]
fn service_replay_matches_simulator_window() {
    assert_service_parity(base_cfg(QueryKind::Window, 42), ServeConfig::lockstep);
}

#[test]
fn service_replay_survives_tiny_queue_backpressure() {
    // A 4-deep admission queue forces constant backpressure; retries
    // must still deliver every query in nonce order and keep parity.
    let cfg = base_cfg(QueryKind::Knn, 9);
    let (sim_report, trace) = Simulation::try_new(cfg.clone()).unwrap().run_recording();
    let mut sc = ServeConfig::lockstep(cfg);
    sc.queue_capacity = 4;
    sc.threads = 2;
    let service = Service::start(sc).unwrap();
    let outcome = replay(&service.handle(), &trace).unwrap();
    let report = service.drain();
    assert!(outcome.is_clean(), "replay diverged: {outcome:?}");
    assert!(
        outcome.backpressure_retries > 0,
        "a 4-deep queue should have bounced at least one submission"
    );
    assert_eq!(report.rejected, outcome.backpressure_retries);
    assert_eq!(report.report, sim_report);
}

#[test]
fn service_replay_matches_under_chaos() {
    // Churn + outage + channel faults: crash wipes, cold restarts,
    // Stale/Failed outage answers, and per-nonce fault flips must all
    // survive the trip through the service.
    let mut cfg = base_cfg(QueryKind::Knn, 1234);
    cfg.churn = ChurnConfig {
        crash_prob: 0.05,
        restart_prob: 0.4,
        late_join_frac: 0.2,
    };
    cfg.outages = vec![(2, 4)];
    cfg.faults = FaultConfig {
        bucket_loss_prob: 0.05,
        peer_drop_prob: 0.1,
        ..FaultConfig::default()
    };
    assert_service_parity(cfg, ServeConfig::lockstep);
}

#[test]
fn submissions_validate_sessions_and_tags() {
    let cfg = base_cfg(QueryKind::Knn, 3);
    let hosts = cfg.params.mh_number;
    let service = Service::start(ServeConfig::lockstep(cfg)).unwrap();
    let handle = service.handle();

    let req = |host: usize, tag: Option<QueryTag>| QueryRequest {
        host,
        pos: airshare_geom::Point::new(1.0, 1.0),
        heading: None,
        spec: QuerySpec::Knn { k: 3 },
        tag,
    };
    let tag = QueryTag {
        nonce: 0,
        at_min: 0.1,
        epoch: 0,
    };

    // Out-of-range host.
    assert!(matches!(
        handle.register(hosts + 5, None),
        Err(ServeError::HostOutOfRange { .. })
    ));
    // No session yet.
    assert!(matches!(
        handle.submit(req(0, Some(tag))),
        Err(ServeError::UnknownSession { host: 0 })
    ));
    handle.register(0, None).unwrap();
    // Lockstep requires a tag.
    assert!(matches!(
        handle.submit(req(0, None)),
        Err(ServeError::TagMismatch)
    ));
    // Tagged submission is admitted and answered after the fence.
    let rx = handle.submit(req(0, Some(tag))).unwrap();
    handle.fence(0);
    let answer = rx
        .recv_timeout(std::time::Duration::from_secs(10))
        .expect("fenced query answered");
    assert_eq!(answer.nonce, 0);
    let report = service.drain();
    assert_eq!(report.accepted, 1);

    // A drained service refuses everything.
    assert!(matches!(handle.register(1, None), Err(ServeError::Stopped)));
}

#[test]
fn scaled_service_serves_live_traffic() {
    // Not a parity test (wall-clock stamping is nondeterministic):
    // drive the scaled-time scheduler with real sessions and live
    // submissions, and check the pipeline answers them all.
    let mut cfg = base_cfg(QueryKind::Knn, 11);
    cfg.warmup_min = 0.0;
    let hosts = cfg.params.mh_number.min(32);
    // One simulated minute every 5ms of wall time.
    let mut sc = ServeConfig::scaled(cfg, 12_000.0);
    sc.threads = 2;
    let service = Service::start(sc).unwrap();
    let handle = service.handle();

    for h in 0..hosts {
        handle.register(h, None).unwrap();
        handle
            .update_position(h, airshare_geom::Point::new(0.5 + h as f64 * 0.01, 0.5), None)
            .unwrap();
    }
    // Give the scheduler a couple of barriers to bring sessions online.
    std::thread::sleep(std::time::Duration::from_millis(50));

    let mut rxs = Vec::new();
    for i in 0..200usize {
        let h = i % hosts;
        let req = QueryRequest {
            host: h,
            pos: airshare_geom::Point::new(0.5 + h as f64 * 0.01, 0.5),
            heading: None,
            spec: QuerySpec::Knn { k: 3 },
            tag: None,
        };
        match handle.submit(req) {
            Ok(rx) => rxs.push(rx),
            Err(ServeError::QueueFull { .. }) => {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            Err(e) => panic!("live submit failed: {e}"),
        }
    }
    let mut answered = 0u64;
    for rx in rxs {
        if rx.recv_timeout(std::time::Duration::from_secs(10)).is_ok() {
            answered += 1;
        }
    }
    let report = service.drain();
    assert!(answered > 0, "no live answers arrived");
    assert_eq!(report.accepted, answered, "an admitted query went unanswered");
    assert!(report.metrics.sessions_registered_total >= hosts as u64);
}
