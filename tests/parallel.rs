//! Parallel-runtime guarantees (DESIGN.md §10):
//!
//! 1. `run_parallel` is bit-identical to the sequential `run()` for any
//!    thread count — metrics and fault counters included.
//! 2. `Histogram` / `MetricsSnapshot` merges are associative and agree
//!    with recording everything into a single recorder.
//! 3. Epoch snapshot semantics: a cache insert made in epoch `e` is
//!    invisible to peers until epoch `e + 1`.

use airshare::obs::ResolutionKind;
use airshare::prelude::*;
use proptest::prelude::*;

fn tiny(seed: u64) -> SimConfig {
    let p = params::synthetic_suburbia().scaled(0.004);
    let mut cfg = SimConfig::paper_defaults(p, QueryKind::Knn, seed);
    cfg.warmup_min = 10.0;
    cfg.measure_min = 10.0;
    cfg.hilbert_order = 6;
    cfg.validate = true;
    cfg
}

fn faulty(seed: u64) -> SimConfig {
    let mut cfg = tiny(seed);
    cfg.faults.bucket_loss_prob = 0.1;
    cfg.faults.peer_drop_prob = 0.1;
    cfg.faults.retry_budget = 4;
    cfg
}

#[test]
fn run_parallel_is_byte_identical_across_thread_counts() {
    let sequential = Simulation::try_new(faulty(3)).expect("valid config").run();
    assert!(sequential.queries.total > 0, "nothing measured");
    assert!(
        sequential.faults.retries_total > 0,
        "fault path never exercised — the equality below would be vacuous"
    );
    for threads in [1usize, 4, 7] {
        let parallel = Simulation::try_new(faulty(3))
            .expect("valid config")
            .run_parallel(&ExecPool::fixed(threads));
        assert_eq!(parallel, sequential, "report diverged at {threads} threads");
        // Belt and braces: the Debug rendering covers every field too,
        // so a future field missed by PartialEq would still be caught.
        assert_eq!(
            format!("{parallel:?}"),
            format!("{sequential:?}"),
            "debug rendering diverged at {threads} threads"
        );
    }
}

#[test]
fn run_parallel_metrics_merges_to_the_sequential_snapshot() {
    let sequential = Simulation::try_new(faulty(8))
        .expect("valid config")
        .run_metrics();
    let expected = sequential.metrics.as_ref().expect("run_metrics fills this");
    assert!(expected.queries_total > 0);
    for threads in [1usize, 4, 7] {
        let parallel = Simulation::try_new(faulty(8))
            .expect("valid config")
            .run_parallel_metrics(&ExecPool::fixed(threads));
        assert_eq!(
            parallel.metrics.as_ref().expect("parallel metrics filled"),
            expected,
            "merged snapshot diverged at {threads} threads"
        );
        assert_eq!(parallel, sequential, "report diverged at {threads} threads");
    }
}

#[test]
fn window_workload_is_thread_count_invariant() {
    let cfg = || {
        let mut c = faulty(11);
        c.query_kind = QueryKind::Window;
        c
    };
    let sequential = Simulation::try_new(cfg()).expect("valid config").run();
    assert!(sequential.queries.total > 0);
    for threads in [1usize, 4, 7] {
        let parallel = Simulation::try_new(cfg())
            .expect("valid config")
            .run_parallel(&ExecPool::fixed(threads));
        assert_eq!(parallel, sequential, "window report diverged at {threads} threads");
    }
}

#[test]
fn chunked_fleet_advance_is_thread_count_invariant() {
    // The parallel fleet-advance pass (chunked churn application +
    // mobility stepping) only engages past its 4096-host threshold, so
    // this config runs a fleet large enough to split into real chunks,
    // with heavy churn so crash wipes, cold restarts, and late joins
    // all land inside the chunked pass. The report must stay
    // byte-identical to the sequential column walk at every thread
    // count.
    let cfg = |seed| {
        let mut c = tiny(seed);
        c.params.mh_number = 6000;
        c.warmup_min = 2.0;
        c.measure_min = 4.0;
        c.validate = false;
        c.churn.crash_prob = 0.05;
        c.churn.restart_prob = 0.4;
        c.churn.late_join_frac = 0.2;
        c
    };
    let sequential = Simulation::try_new(cfg(5)).expect("valid config").run();
    assert!(sequential.queries.total > 0, "nothing measured");
    assert!(
        sequential.hosts_crashed > 0 && sequential.hosts_restarted > 0,
        "churn never fired — the chunked churn application went untested"
    );
    for threads in [1usize, 2, 4, 8] {
        let parallel = Simulation::try_new(cfg(5))
            .expect("valid config")
            .run_parallel(&ExecPool::fixed(threads));
        assert_eq!(parallel, sequential, "report diverged at {threads} threads");
        assert_eq!(
            format!("{parallel:?}"),
            format!("{sequential:?}"),
            "debug rendering diverged at {threads} threads"
        );
    }
}

#[test]
fn phase_times_are_populated_without_touching_the_report() {
    // Phase timers are measurement, not simulation output: the report
    // (and its metrics snapshot) must stay byte-identical whether or
    // not anyone reads them, and the accessor must show real time
    // after a run.
    let mut sim = Simulation::try_new(tiny(13)).expect("valid config");
    assert_eq!(sim.phase_times().total_ns(), 0, "phases start zeroed");
    let report = sim.run_metrics();
    let phases = sim.phase_times();
    assert!(phases.total_ns() > 0, "a run must accumulate phase time");
    assert!(phases.query_ns > 0, "queries ran, so query time is nonzero");
    let snapshot = report.metrics.as_ref().expect("run_metrics fills this");
    assert!(snapshot.phases.total_ns() > 0, "snapshot carries the phases");
    // PhaseTimes comparison is identity-blind by design, so two runs
    // with different wall clocks still produce equal snapshots.
    let second = Simulation::try_new(tiny(13)).expect("valid config").run_metrics();
    assert_eq!(second, report);
}

#[test]
fn pool_from_env_matches_sequential_run() {
    // CI runs the whole suite under AIRSHARE_THREADS=1 and =8; the report
    // must not depend on which pool size the environment picked.
    let sequential = Simulation::try_new(tiny(21)).expect("valid config").run();
    let parallel = Simulation::try_new(tiny(21))
        .expect("valid config")
        .run_parallel(&ExecPool::from_env());
    assert_eq!(parallel, sequential);
}

// ---------------------------------------------------------------------
// Epoch snapshot semantics
// ---------------------------------------------------------------------

#[test]
fn epoch_snapshot_hides_inserts_from_peers_until_the_next_epoch() {
    // One giant epoch spanning the whole run: every peer read observes
    // the initial (empty) cache snapshot, so nothing can resolve via
    // peers — inserts made during the epoch stay invisible until a next
    // epoch that never comes. Own-cache reads are excluded to isolate
    // the peer path.
    let frozen = || {
        let mut c = tiny(33);
        c.use_own_cache = false;
        c.epoch_min = c.warmup_min + c.measure_min + 1.0;
        c
    };
    let one_epoch = Simulation::try_new(frozen()).expect("valid config").run();
    assert!(one_epoch.queries.total > 0);
    assert_eq!(
        one_epoch.queries.by_peers + one_epoch.queries.by_approx,
        0,
        "peers saw cache state committed inside the same epoch"
    );

    // Same world with ordinary epochs: commits become visible at each
    // barrier and peers start answering queries.
    let refreshed = || {
        let mut c = tiny(33);
        c.use_own_cache = false;
        c
    };
    let many_epochs = Simulation::try_new(refreshed()).expect("valid config").run();
    assert!(
        many_epochs.queries.by_peers + many_epochs.queries.by_approx > 0,
        "epoch barriers never published any cache state"
    );

    // The parallel runtime agrees in both regimes.
    for cfg in [frozen(), refreshed()] {
        let seq = Simulation::try_new(cfg.clone()).expect("valid config").run();
        let par = Simulation::try_new(cfg)
            .expect("valid config")
            .run_parallel(&ExecPool::fixed(4));
        assert_eq!(par, seq);
    }
}

// ---------------------------------------------------------------------
// Merge properties
// ---------------------------------------------------------------------

fn hist_of(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn histogram_merge_is_associative_and_matches_single_recording(
        a in prop::collection::vec(0u64..1_000_000, 0..80),
        b in prop::collection::vec(0u64..1_000_000, 0..80),
        c in prop::collection::vec(0u64..1_000_000, 0..80),
    ) {
        // (a ⊕ b) ⊕ c
        let mut left = hist_of(&a);
        left.merge(&hist_of(&b));
        left.merge(&hist_of(&c));
        // a ⊕ (b ⊕ c)
        let mut bc = hist_of(&b);
        bc.merge(&hist_of(&c));
        let mut right = hist_of(&a);
        right.merge(&bc);
        prop_assert_eq!(&left, &right);

        // Both equal one histogram fed every value in any order.
        let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        let single = hist_of(&all);
        prop_assert_eq!(&left, &single);
        prop_assert_eq!(left.percentiles(), single.percentiles());
    }

    #[test]
    fn snapshot_merge_is_associative_and_matches_single_recorder(
        a in prop::collection::vec((0u32..4, 0u64..5_000, 0u64..5_000), 0..60),
        b in prop::collection::vec((0u32..4, 0u64..5_000, 0u64..5_000), 0..60),
        c in prop::collection::vec((0u32..4, 0u64..5_000, 0u64..5_000), 0..60),
    ) {
        // Decode each sampled triple into a short query trace.
        let feed = |rec: &mut MetricsRecorder, events: &[(u32, u64, u64)]| {
            for (i, &(kind, tuning, latency)) in events.iter().enumerate() {
                rec.begin_query(i as u64, tuning);
                match kind {
                    0 => rec.record(TraceEvent::ProbeStarted { tick: tuning }),
                    1 => rec.record(TraceEvent::IndexBucketTuned {
                        count: (tuning % 7) as u32 + 1,
                    }),
                    2 => rec.record(TraceEvent::FrameLost {
                        bucket: (latency % 13) as u32,
                        retry: 0,
                    }),
                    _ => rec.record(TraceEvent::PeerContacted {
                        peer: (latency % 31) as u32,
                    }),
                }
                rec.record(TraceEvent::QueryResolved {
                    by: if kind == 3 {
                        ResolutionKind::PeersVerified
                    } else {
                        ResolutionKind::Broadcast
                    },
                    tuning,
                    latency,
                });
            }
        };
        let snap = |events: &[(u32, u64, u64)]| {
            let mut rec = MetricsRecorder::new();
            feed(&mut rec, events);
            rec.snapshot()
        };

        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let mut left = snap(&a);
        left.merge(&snap(&b));
        left.merge(&snap(&c));
        let mut bc = snap(&b);
        bc.merge(&snap(&c));
        let mut right = snap(&a);
        right.merge(&bc);
        prop_assert_eq!(&left, &right);

        // Both equal one recorder that saw every event.
        let mut whole = MetricsRecorder::new();
        feed(&mut whole, &a);
        feed(&mut whole, &b);
        feed(&mut whole, &c);
        prop_assert_eq!(&left, &whole.snapshot());
    }
}
