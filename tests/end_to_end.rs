//! Cross-crate integration: a hand-driven multi-host scenario exercising
//! the full public API surface — broadcast channel, caches, P2P gather,
//! SBNN/SBWQ — with every answer checked against ground truth.

use airshare::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CAT: PoiCategory = PoiCategory::GAS_STATION;

struct World {
    index: AirIndex,
    schedule: Schedule,
    oracle: RTree<u32>,
    table: PoiTable,
}

fn build_world(n: usize, side: f64, seed: u64) -> World {
    let world = Rect::from_coords(0.0, 0.0, side, side);
    let mut rng = StdRng::seed_from_u64(seed);
    let pois: Vec<Poi> = (0..n)
        .map(|i| {
            Poi::new(
                i as u32,
                Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)),
            )
        })
        .collect();
    let oracle = RTree::bulk_load(pois.iter().map(|p| (p.pos, p.id)).collect());
    let table = PoiTable::from_pois(pois.iter().copied());
    let index = AirIndex::try_build(pois, Grid::new(world, 6), 8).unwrap();
    let schedule = Schedule::new(index.data_buckets(), index.index_buckets(), 4);
    World {
        index,
        schedule,
        oracle,
        table,
    }
}

#[test]
fn knowledge_flows_from_broadcast_to_peers() {
    let w = build_world(400, 16.0, 5);
    let client = OnAirClient::new(&w.index, &w.schedule);

    // Host A at (8, 8) answers a 5-NN query on air and caches the
    // verified search MBR.
    let mut cache_a = HostCache::new(50, ReplacementPolicy::default());
    let a_pos = Point::new(8.0, 8.0);
    let empty = MergedRegion::from_regions(Vec::<(Rect, Vec<Poi>)>::new());
    let res_a = sbnn(
        a_pos,
        &SbnnConfig::paper_defaults(5, 400.0 / 256.0),
        &empty,
        Some((&client.as_dyn(), 0)),
    )
    .resolved()
    .unwrap();
    assert_eq!(res_a.resolved_by, ResolvedBy::Broadcast);
    let (vr, pois) = res_a.adoptable.clone().unwrap();
    cache_a.insert(
        CAT,
        RegionEntry::new(vr, pois, 0.0),
        &CacheContext {
            pos: a_pos,
            heading: None,
            now: 0.0,
        },
    );
    assert!(cache_a.poi_count(CAT) > 0);

    // Host B, 100 m away, now asks for its 3 nearest POIs. It gathers
    // A's cache over P2P and must be able to verify at least one
    // neighbor without the channel.
    let b_pos = a_pos.offset(airshare::geom::meters_to_miles(100.0), 0.0);
    let positions = vec![a_pos, b_pos];
    let caches = vec![cache_a, HostCache::new(50, ReplacementPolicy::default())];
    // Replies carry PoiId handles; B resolves them against its own
    // canonical table (the full POI set the world was built on).
    let grid = NeighborGrid::build(positions, 0.5);
    let (replies, stats) = gather_peer_data(1, b_pos, 0.2, CAT, &grid, &caches, &w.table);
    assert_eq!(stats.peers_contacted, 1);
    assert_eq!(replies.len(), 1);

    let mvr = MergedRegion::from_replies(&replies, &w.table);
    assert!(mvr.contains(b_pos), "B sits inside A's verified region");
    let heap = nnv(b_pos, 3, &mvr, 400.0 / 256.0);
    assert!(heap.verified_count() >= 1, "state: {:?}", heap.state());

    // Whatever B verified must agree with the oracle.
    let truth = w.oracle.knn(b_pos, 3);
    for (rank, e) in heap.entries().iter().enumerate() {
        if e.verified {
            assert!(
                (e.distance - truth[rank].distance).abs() < 1e-9,
                "rank {rank} wrong"
            );
        }
    }

    // And completing the query over the channel with B's bounds is
    // exact and cheaper than a cold query.
    let res_b = sbnn(
        b_pos,
        &SbnnConfig {
            accept_approx: false,
            ..SbnnConfig::paper_defaults(3, 400.0 / 256.0)
        },
        &mvr,
        Some((&client.as_dyn(), 1000)),
    )
    .resolved()
    .unwrap();
    for (got, want) in res_b.neighbors.iter().zip(&truth) {
        assert!((got.distance - want.distance).abs() < 1e-9);
    }
    if res_b.resolved_by == ResolvedBy::Broadcast {
        let cold = client.knn(1000, b_pos, 3).unwrap();
        assert!(
            res_b.air.unwrap().buckets <= cold.stats.buckets,
            "bound filtering fetched more than a cold query"
        );
    }
}

#[test]
fn window_query_roundtrip_through_caches() {
    let w = build_world(500, 16.0, 9);
    let client = OnAirClient::new(&w.index, &w.schedule);

    // A host answers a window query on air, caches it, then a peer's
    // overlapping window is answered (partially) from that cache.
    let w1 = Rect::from_coords(4.0, 4.0, 7.0, 7.0);
    let empty = MergedRegion::from_regions(Vec::<(Rect, Vec<Poi>)>::new());
    let r1 = sbwq(&w1, &SbwqConfig::default(), &empty, Some((&client.as_dyn(), 0)))
        .resolved()
        .unwrap();
    assert_eq!(r1.resolved_by, ResolvedBy::Broadcast);
    let mut truth1: Vec<u32> = w.oracle.window(&w1).into_iter().map(|(_, &i)| i).collect();
    truth1.sort_unstable();
    let mut got1: Vec<u32> = r1.pois.iter().map(|p| p.id).collect();
    got1.sort_unstable();
    assert_eq!(got1, truth1);

    // Cache the whole window as a verified region.
    let (vr, pois) = airshare::core::adoptable_window_region(&w1, &r1);
    let mvr = MergedRegion::from_regions([(vr, pois)]);

    // Sub-window: fully covered, answered exactly with no channel.
    let sub = Rect::from_coords(4.5, 4.5, 6.0, 6.5);
    let r2 = sbwq(&sub, &SbwqConfig::default(), &mvr, None)
        .resolved()
        .unwrap();
    assert_eq!(r2.resolved_by, ResolvedBy::PeersVerified);
    let mut truth2: Vec<u32> = w.oracle.window(&sub).into_iter().map(|(_, &i)| i).collect();
    truth2.sort_unstable();
    let mut got2: Vec<u32> = r2.pois.iter().map(|p| p.id).collect();
    got2.sort_unstable();
    assert_eq!(got2, truth2);

    // Overlapping window: reduced fetch, still exact, fewer buckets
    // than fetching the whole window cold.
    let w3 = Rect::from_coords(6.0, 5.0, 9.0, 8.0);
    let r3 = sbwq(&w3, &SbwqConfig::default(), &mvr, Some((&client.as_dyn(), 500)))
        .resolved()
        .unwrap();
    let mut truth3: Vec<u32> = w.oracle.window(&w3).into_iter().map(|(_, &i)| i).collect();
    truth3.sort_unstable();
    let mut got3: Vec<u32> = r3.pois.iter().map(|p| p.id).collect();
    got3.sort_unstable();
    assert_eq!(got3, truth3);
    assert!(r3.coverage > 0.0 && r3.coverage < 1.0);
    let cold = client.window(500, &w3);
    assert!(r3.air.unwrap().buckets <= cold.stats.buckets);
}

#[test]
fn umbrella_reexports_are_usable() {
    // The namespaced module paths work alongside the prelude.
    let p = airshare::geom::Point::new(1.0, 2.0);
    let c = airshare::hilbert::HilbertCurve::new(4);
    assert_eq!(c.decode(c.encode(3, 7)), (3, 7));
    let t: airshare::rtree::RTree<u8> = airshare::rtree::RTree::default();
    assert!(t.is_empty());
    assert_eq!(airshare::geom::miles_to_meters(1.0), 1609.344);
    assert!(p.is_finite());
}
