//! Sharing-based window queries in a dense city (§3.4, Figure 9).
//!
//! Runs a scaled Los Angeles City simulation with a window-query
//! workload, then dissects a single SBWQ by hand: full coverage (WQ1),
//! partial coverage with window reduction (WQ2), and the bucket savings
//! reduction buys over fetching the whole window.
//!
//! Run with: `cargo run --release --example city_window_queries`

use airshare::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // --- Part 1: a scaled LA simulation with window queries. ---
    let params = params::la_city().scaled(0.01); // 2 mi × 2 mi, same density
    let mut cfg = SimConfig::paper_defaults(params, QueryKind::Window, 99);
    cfg.warmup_min = 10.0;
    cfg.measure_min = 15.0;
    println!(
        "simulating {}: {} hosts, {} POIs, {:.0} queries/min on {} mi²",
        params.name,
        params.mh_number,
        params.poi_number,
        params.query_rate,
        (params.world_mi * params.world_mi) as u32
    );
    let report = Simulation::try_new(cfg).expect("valid config").run();
    println!(
        "window queries: {:.1}% solved by SBWQ peers, {:.1}% needed the channel \
         (mean coverage of those: {:.0}%)\n",
        report.queries.pct_peers(),
        report.queries.pct_broadcast(),
        100.0 * report.mean_partial_coverage()
    );

    // --- Part 2: one query dissected (the Figure 9 scenarios). ---
    let world = Rect::from_coords(0.0, 0.0, 10.0, 10.0);
    let mut rng = StdRng::seed_from_u64(4);
    let pois: Vec<Poi> = (0..300)
        .map(|i| {
            Poi::new(
                i,
                Point::new(rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)),
            )
        })
        .collect();
    let index = AirIndex::try_build(pois.clone(), Grid::new(world, 6), 6).unwrap();
    let schedule = Schedule::new(index.data_buckets(), index.index_buckets(), 4);
    let client = OnAirClient::new(&index, &schedule);

    let vrs = [
        Rect::from_coords(2.0, 2.0, 5.0, 6.0),
        Rect::from_coords(4.5, 3.0, 7.0, 5.5),
    ];
    let mvr = MergedRegion::from_regions(vrs.iter().map(|vr| {
        (
            *vr,
            pois.iter().filter(|p| vr.contains(p.pos)).copied().collect::<Vec<_>>(),
        )
    }));

    // WQ1: fully inside the merged region.
    let wq1 = Rect::from_coords(3.0, 3.5, 4.5, 5.0);
    let r1 = sbwq(&wq1, &SbwqConfig::default(), &mvr, Some((&client.as_dyn(), 0)))
        .resolved()
        .unwrap();
    println!(
        "WQ1 {:?}: covered {:.0}% → {:?}, {} POIs, no broadcast",
        wq1,
        100.0 * r1.coverage,
        r1.resolved_by,
        r1.pois.len()
    );
    assert!(r1.air.is_none());

    // WQ2: hangs out of the merged region → reduced windows on air.
    let wq2 = Rect::from_coords(4.0, 4.0, 8.5, 7.0);
    let r2 = sbwq(&wq2, &SbwqConfig::default(), &mvr, Some((&client.as_dyn(), 0)))
        .resolved()
        .unwrap();
    let air2 = r2.air.unwrap();
    println!(
        "WQ2 {:?}: covered {:.0}% → {:?}; {} reduced window(s), {} buckets fetched",
        wq2,
        100.0 * r2.coverage,
        r2.resolved_by,
        r2.reduced_windows.len(),
        air2.buckets
    );

    // The same query without window reduction fetches the whole window.
    let r2_full = sbwq(
        &wq2,
        &SbwqConfig {
            use_window_reduction: false,
        },
        &mvr,
        Some((&client.as_dyn(), 0)),
    )
    .resolved()
    .unwrap();
    let air_full = r2_full.air.unwrap();
    println!(
        "WQ2 without reduction: {} buckets (reduction saved {})",
        air_full.buckets,
        air_full.buckets.saturating_sub(air2.buckets)
    );

    // Both paths are exact.
    let brute: Vec<u32> = pois
        .iter()
        .filter(|p| wq2.contains(p.pos))
        .map(|p| p.id)
        .collect();
    let mut got: Vec<u32> = r2.pois.iter().map(|p| p.id).collect();
    got.sort_unstable();
    let mut want = brute;
    want.sort_unstable();
    assert_eq!(got, want);
    println!("\nboth window answers cross-checked against brute force ✓");
}
