//! Serve quickstart: the base station as a live service.
//!
//! Starts `airshare-serve` in scaled wall-clock mode over a small world,
//! registers a handful of mobile-host sessions, submits live kNN queries
//! through the bounded admission queue, and drains. Shows the whole
//! session → admission → epoch batch → reply-channel → drain loop in
//! ~40 lines.
//!
//! Run with: `cargo run --release --example serve_quickstart`

use airshare::prelude::*;
use std::time::Duration;

fn main() {
    // A scaled-down LA-county world, no warm-up: this is a live service,
    // every answer counts from the first barrier.
    let mut p = params::la_city().scaled(0.005);
    p.cache_size = 30;
    let mut cfg = SimConfig::paper_defaults(p, QueryKind::Knn, 42);
    cfg.warmup_min = 0.0;
    cfg.hilbert_order = 6;
    let hosts = cfg.params.mh_number.min(16);
    let k = cfg.params.knn_k;

    // One simulated minute per 10 ms of wall time; epoch barriers
    // (0.25 sim-min) commit every 2.5 ms.
    let service = Service::start(ServeConfig::scaled(cfg, 6_000.0)).unwrap();
    let handle = service.handle();

    // Sessions: register + report a position. Both apply at the next
    // epoch barrier, like everything else the scheduler commits.
    for h in 0..hosts {
        handle.register(h, None).unwrap();
        let pos = Point::new(0.3 + 0.05 * h as f64, 0.5);
        handle.update_position(h, pos, None).unwrap();
    }
    std::thread::sleep(Duration::from_millis(20)); // a few barriers

    // Live queries: submit returns a reply channel immediately; the
    // answer arrives once the query's batch executes at a barrier. A
    // full queue would return ServeError::QueueFull { retry_after_ticks }.
    let mut pending = Vec::new();
    for h in 0..hosts {
        let req = QueryRequest {
            host: h,
            pos: Point::new(0.3 + 0.05 * h as f64, 0.5),
            heading: None,
            spec: QuerySpec::Knn { k },
            tag: None, // scaled mode stamps time/nonce at admission
        };
        pending.push((h, handle.submit(req).unwrap()));
    }
    for (h, rx) in pending {
        let answer = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        println!(
            "host {h}: {}-NN answered with quality {:?} → POIs {:?}",
            k, answer.quality, answer.ids
        );
    }

    // Drain: flush every admitted query, stop the scheduler, and fold
    // the worker recorders into one report.
    let report = service.drain();
    println!(
        "drained: {} accepted, {} rejected, {} epochs committed, p95 tuning {} ticks",
        report.accepted,
        report.rejected,
        report.metrics.epochs_committed_total,
        report.metrics.tuning.p95
    );
}
