//! Fleet storage quickstart: the handle-based APIs behind the
//! million-host engine (DESIGN.md §15).
//!
//! Walks the three layers of `airshare::fleet`:
//! 1. the canonical [`PoiTable`] and its 4-byte [`PoiId`] handles —
//!    POI payloads live once, everything else refers;
//! 2. the arena-backed [`HostCache`]: generational entry handles,
//!    handle-native inserts, and the resolving [`HostCacheRef`] view;
//! 3. the columnar [`FleetStore`] a simulation exposes, plus the
//!    handle-carrying peer exchange (`gather_peer_data` →
//!    `MergedRegion::from_replies`).
//!
//! Run with: `cargo run --release --example fleet_quickstart`

use airshare::prelude::*;

const CAT: PoiCategory = PoiCategory::GAS_STATION;

fn main() {
    // --- 1. The canonical table: every POI payload exactly once. ---
    let pois: Vec<Poi> = (0..100)
        .map(|i| {
            Poi::new(
                i,
                Point::new(f64::from(i % 10) + 0.5, f64::from(i / 10) + 0.5),
            )
        })
        .collect();
    let table = PoiTable::from_pois(pois.iter().copied());
    // A handle is the POI's server id, typed; resolving is O(1).
    let handle: PoiId = pois[42].handle();
    let resolved = table.get(handle).expect("table knows its own POIs");
    println!(
        "table: {} POIs; handle {:?} resolves to {:?}",
        table.len(),
        handle,
        resolved.pos
    );

    // --- 2. Arena-backed caches: entries are generational handles,
    // POI membership is a span of PoiIds in a shared pool. ---
    let mut cache = HostCache::new(20, ReplacementPolicy::default());
    let vr = Rect::from_coords(0.0, 0.0, 4.0, 4.0);
    let ids: Vec<PoiId> = pois
        .iter()
        .filter(|p| vr.contains(p.pos))
        .map(Poi::handle)
        .collect();
    let ctx = CacheContext {
        pos: Point::new(2.0, 2.0),
        heading: Some((1.0, 0.0)),
        now: 0.0,
    };
    // Handle-native insert: no owned Vec<Poi> anywhere on the path
    // (this is the allocation-free steady-state API the engine uses).
    cache.insert_ids(&table, CAT, vr, &ids, 0.0, &ctx);
    let entry_id: EntryId = cache.entry_ids(CAT)[0];
    let view: EntryView<'_> = cache.get(entry_id).expect("just inserted");
    println!(
        "cache: region {:?} carries {} POI handles (entry {:?})",
        view.vr,
        view.len(),
        entry_id
    );
    // Need payloads back? Pair the cache with the table.
    let snap = cache.with_table(&table).share_snapshot(CAT);
    println!(
        "resolved snapshot: {} regions, {} owned POIs",
        snap.len(),
        snap.iter().map(|(_, p)| p.len()).sum::<usize>()
    );

    // --- 3. Peer exchange ships claims, not payloads: replies carry
    // (Rect, Vec<PoiId>) and the receiver resolves against ITS OWN
    // table, so peers cannot forge POI positions. ---
    let positions = vec![Point::new(2.0, 2.0), Point::new(2.1, 2.0)];
    let caches = vec![cache, HostCache::new(20, ReplacementPolicy::default())];
    let grid = NeighborGrid::build(positions, 0.5);
    let (replies, stats) =
        gather_peer_data(1, Point::new(2.1, 2.0), 0.3, CAT, &grid, &caches, &table);
    let mvr = MergedRegion::from_replies(&replies, &table);
    println!(
        "peer exchange: {} peers, {} regions, {} POIs resolved into the MVR",
        stats.peers_contacted,
        replies.iter().map(|r| r.regions.len()).sum::<usize>(),
        mvr.pois().len()
    );

    // --- 4. The columnar fleet store a full simulation runs on. ---
    let p = params::synthetic_suburbia().scaled(0.004);
    let mut cfg = SimConfig::paper_defaults(p, QueryKind::Knn, 42);
    cfg.warmup_min = 5.0;
    cfg.measure_min = 5.0;
    cfg.hilbert_order = 6;
    let mut sim = Simulation::try_new(cfg).expect("valid config");
    let report = sim.run();
    let fleet: &FleetStore = sim.fleet();
    let online = fleet.online().iter().filter(|&&b| b).count();
    let cached: usize = (0..fleet.len()).map(|h| fleet.cache(h).poi_count(CAT)).sum();
    println!(
        "simulated fleet: {} hosts ({} online), {} POIs cached fleet-wide, \
         {} queries answered ({} by peers)",
        fleet.len(),
        online,
        cached,
        report.queries.total,
        report.queries.by_peers
    );
    println!(
        "every cached POI above is a 4-byte handle into one {}-entry table.",
        sim.poi_table().len()
    );
}
