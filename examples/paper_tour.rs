//! A guided tour of the paper's worked figures, recreated live.
//!
//! Walks through the constructions of Figures 2, 4, 5–7, 8 and Table 2
//! of Ku, Zimmermann & Wang (ICDE 2007) with this library's actual
//! implementations, printing what each figure illustrates.
//!
//! Run with: `cargo run --release --example paper_tour`

use airshare::core::approx::{surpassing_ratio, unverified_area, worst_case_detour};
use airshare::prelude::*;

fn main() {
    figure2_air_index();
    figure4_onair_knn();
    figures5to7_nnv();
    figure8_window_span();
    table2_heap();
}

/// Figure 2: the (1, m) broadcast organization and its two metrics.
fn figure2_air_index() {
    println!("━━ Figure 2 — the (1, m) air index ━━");
    // A small file: 12 data buckets, 1 index bucket, m = 3.
    let s = Schedule::new(12, 1, 3);
    println!(
        "cycle of {} ticks: the index repeats {} times, preceding each 1/{} of the data",
        s.cycle_len(),
        s.m(),
        s.m()
    );
    // A client tuning in mid-cycle waits only until the *next* index.
    for t in [0u64, 4, 9] {
        println!(
            "  tune in at tick {t}: next index segment at tick {}",
            s.next_index_start(t)
        );
    }
    println!();
}

/// Figure 4: the on-air kNN search range on the Hilbert grid.
fn figure4_onair_knn() {
    println!("━━ Figure 4 — on-air kNN over the Hilbert curve ━━");
    // The figure's 8×8 grid (order-3 curve, indexes 0..63).
    let curve = HilbertCurve::new(3);
    assert_eq!(curve.cell_count(), 64);
    // q sits in the lower-middle of the grid, as drawn.
    let grid = Grid::new(Rect::from_coords(0.0, 0.0, 8.0, 8.0), 3);
    let q = Point::new(4.5, 1.5);
    println!(
        "query cell has curve index {} (grid cell {:?})",
        grid.value_of(q),
        grid.cell_of(q)
    );
    // A kNN search range like the figure's MBR spans a long stretch of
    // the broadcast order — that is the latency problem.
    let mbr = Rect::centered_square(q, 2.5);
    let ivs = grid.intervals_for_world_rect(&mbr);
    let (a, b) = (ivs.first().unwrap().0, ivs.last().unwrap().1);
    println!(
        "the search MBR covers curve indexes {a}..{b} in {} interval(s) — {}% of the file",
        ivs.len(),
        100 * (b - a + 1) / 64
    );
    println!();
}

/// Figures 5–7: nearest-neighbor verification and the unverified region.
fn figures5to7_nnv() {
    println!("━━ Figures 5–7 — NNV over the merged verified region ━━");
    // Two peers' verified regions merge into a polygonal MVR.
    let vr1 = Rect::from_coords(0.0, 2.0, 8.0, 8.0);
    let vr2 = Rect::from_coords(3.0, 0.0, 10.0, 6.0);
    let pois = [
        Poi::new(1, Point::new(5.2, 4.8)), // o1 — near q
        Poi::new(2, Point::new(6.5, 6.0)), // o2
        Poi::new(3, Point::new(1.5, 3.0)), // o3
        Poi::new(4, Point::new(9.0, 5.0)), // o4 — near the MVR edge
        Poi::new(5, Point::new(4.0, 1.0)), // o5
    ];
    let attach = |vr: Rect| -> (Rect, Vec<Poi>) {
        (vr, pois.iter().filter(|p| vr.contains(p.pos)).copied().collect())
    };
    let mvr = MergedRegion::from_regions([attach(vr1), attach(vr2)]);
    let q = Point::new(5.0, 4.0);
    let (d_es, edge) = mvr.nearest_edge(q).unwrap();
    println!("q = {q:?} lies inside the MVR; nearest boundary edge at {d_es:.2} mi ({edge:?})");
    let heap = nnv(q, 4, &mvr, 0.3);
    for (i, e) in heap.entries().iter().enumerate() {
        if e.verified {
            println!(
                "  o{} at {:.2} mi ≤ ‖q,e_s‖ → VERIFIED {}-NN (Lemma 3.1, Fig. 5)",
                e.poi.id,
                e.distance,
                i + 1
            );
        } else {
            let u = unverified_area(q, e.distance, &mvr);
            println!(
                "  o{} at {:.2} mi → unverified (Fig. 6): unverified region = {:.2} mi², \
                 correctness e^(-λu) = {:.0}% (Lemma 3.2, Fig. 7)",
                e.poi.id,
                e.distance,
                u,
                100.0 * e.correctness.unwrap()
            );
        }
    }
    println!();
}

/// Figure 8: a window query's first and last points on the curve.
fn figure8_window_span() {
    println!("━━ Figure 8 — window query on the Hilbert index ━━");
    let grid = Grid::new(Rect::from_coords(0.0, 0.0, 8.0, 8.0), 3);
    let w = Rect::from_coords(2.2, 2.2, 5.8, 5.8);
    let cells = grid.cell_rect_for(&w).unwrap();
    let (a, b) = grid.curve().window_span(&cells);
    println!(
        "window {:?} → first point a = {a}, last point b = {b}: a naive client listens to \
         {}% of the cycle",
        w,
        100 * (b - a + 1) / 64
    );
    let ivs = grid.curve().intervals_for_rect(&cells);
    let covered: u64 = ivs.iter().map(|(lo, hi)| hi - lo + 1).sum();
    println!(
        "exact interval decomposition needs only {} interval(s) covering {}% — and SBWQ \
         shrinks that further to whatever peers have not already verified (Fig. 9)",
        ivs.len(),
        100 * covered / 64
    );
    println!();
}

/// Table 2: the result heap with probabilities and surpassing ratios.
fn table2_heap() {
    println!("━━ Table 2 — the heap H ━━");
    // Reconstruct the table's scenario: verified o1 (2 mi) and o5 (3 mi),
    // unverified o4 (5 mi) and o3 (6 mi).
    let last_verified = Some(3.0);
    for (name, dist, verified, prob) in [
        ("o1", 2.0, true, None),
        ("o5", 3.0, true, None),
        ("o4", 5.0, false, Some(0.55)),
        ("o3", 6.0, false, Some(0.40)),
    ] {
        match (verified, prob) {
            (true, _) => println!("  {name}: {dist} mi — verified"),
            (false, Some(p)) => {
                let r = surpassing_ratio(dist, last_verified).unwrap();
                println!(
                    "  {name}: {dist} mi — correctness {:.0}%, surpassing ratio {:.2}, \
                     worst-case detour {:.1} mi",
                    100.0 * p,
                    r,
                    worst_case_detour(3.0, r)
                );
            }
            _ => unreachable!(),
        }
    }
    println!("\n(the paper's motorist example: taking o4 risks ≈ 2 extra miles — 3·(1.67−1))");
}
