//! The `(1, m)` air-index trade-off (paper §2.1, Figure 2).
//!
//! Sweeps the index replication factor `m` and reports, per the
//! Imielinski et al. model the paper builds on:
//!
//! * **probe wait** — how long a client waits for the next index segment
//!   (falls ~1/m: the whole point of replication);
//! * **access latency** — full-query wall time (rises slightly: the
//!   cycle grows by `(m-1)·index` ticks);
//! * **tuning time** — active listening (flat for a fixed bucket set).
//!
//! Run with: `cargo run --release --example broadcast_tuning`

use airshare::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let world = Rect::from_coords(0.0, 0.0, 20.0, 20.0);
    let mut rng = StdRng::seed_from_u64(11);
    let pois: Vec<Poi> = (0..2750) // LA City's POI count
        .map(|i| {
            Poi::new(
                i,
                Point::new(rng.gen_range(0.0..20.0), rng.gen_range(0.0..20.0)),
            )
        })
        .collect();
    let index = AirIndex::try_build(pois, Grid::new(world, 8), 10).unwrap();
    println!(
        "data file: {} buckets, index segment: {} buckets\n",
        index.data_buckets(),
        index.index_buckets()
    );

    let q = Point::new(10.0, 10.0);
    println!("{:>3}  {:>10}  {:>12}  {:>12}  {:>10}", "m", "cycle", "probe wait", "latency", "tuning");
    for m in [1usize, 2, 4, 8, 16] {
        let schedule = Schedule::new(index.data_buckets(), index.index_buckets(), m);
        let client = OnAirClient::new(&index, &schedule);
        let cycle = schedule.cycle_len();
        // Average over tune-in times across one cycle (sampled).
        let samples = 512u64;
        let mut probe = 0u64;
        let mut latency = 0u64;
        let mut tuning = 0u64;
        for i in 0..samples {
            let t = i * cycle / samples;
            probe += schedule.next_index_start(t) - t;
            let res = client.knn(t, q, 5).expect("enough POIs");
            latency += res.stats.latency;
            tuning += res.stats.tuning;
        }
        println!(
            "{m:>3}  {cycle:>10}  {:>12.1}  {:>12.1}  {:>10.1}",
            probe as f64 / samples as f64,
            latency as f64 / samples as f64,
            tuning as f64 / samples as f64,
        );
    }
    println!(
        "\nreplication buys fast index discovery (short probe) at a small\n\
         latency cost from the longer cycle; tuning time is unaffected.\n\
         The paper's clients exploit this: read the nearest index segment,\n\
         sleep, and wake only for the buckets they still need."
    );
}
