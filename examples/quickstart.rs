//! Quickstart: one SBNN query, end to end.
//!
//! Builds a small broadcast world, gives two peers cached verified
//! regions, and runs a 2-NN query that is answered entirely from peer
//! data — then the same query with no peers, to show the broadcast cost
//! that sharing avoided.
//!
//! Run with: `cargo run --release --example quickstart`

use airshare::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // --- The server side: 200 POIs on a 10 mi × 10 mi area, broadcast
    // on a (1, 4) Hilbert air index. ---
    let world = Rect::from_coords(0.0, 0.0, 10.0, 10.0);
    let mut rng = StdRng::seed_from_u64(7);
    let pois: Vec<Poi> = (0..200)
        .map(|i| {
            Poi::new(
                i,
                Point::new(rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)),
            )
        })
        .collect();
    let index = AirIndex::try_build(pois.clone(), Grid::new(world, 6), 8).unwrap();
    let schedule = Schedule::new(index.data_buckets(), index.index_buckets(), 4);
    let client = OnAirClient::new(&index, &schedule);
    println!(
        "channel: {} data buckets, index {} buckets, cycle {} ticks",
        index.data_buckets(),
        index.index_buckets(),
        schedule.cycle_len()
    );

    // --- Two peers answered queries recently and cached the results:
    // each holds a verified region (it provably knows every POI inside)
    // plus those POIs. ---
    let q = Point::new(5.0, 5.0);
    let vr1 = Rect::from_coords(3.5, 3.5, 6.5, 6.5);
    let vr2 = Rect::from_coords(4.5, 2.0, 7.5, 5.0);
    let peer = |vr: Rect| -> (Rect, Vec<Poi>) {
        (vr, pois.iter().filter(|p| vr.contains(p.pos)).copied().collect())
    };
    let mvr = MergedRegion::from_regions([peer(vr1), peer(vr2)]);
    println!(
        "merged verified region: {} POIs known from peers",
        mvr.pois().len()
    );

    // --- SBNN: answer the 2-NN query from the peers alone. ---
    let cfg = SbnnConfig::paper_defaults(2, 200.0 / 100.0); // λ = POIs per mi²
    let outcome = sbnn(q, &cfg, &mvr, None);
    match outcome {
        SbnnOutcome::Resolved(res) => {
            println!("resolved by {:?}:", res.resolved_by);
            for (i, n) in res.neighbors.iter().enumerate() {
                println!(
                    "  #{num}: POI {id} at {dist:.3} mi  ({status})",
                    num = i + 1,
                    id = n.poi.id,
                    dist = n.distance,
                    status = if n.verified {
                        "verified".to_string()
                    } else {
                        format!(
                            "correctness {:.0}%",
                            100.0 * n.correctness.unwrap_or(0.0)
                        )
                    }
                );
            }
        }
        SbnnOutcome::Unresolved(heap) => {
            println!(
                "peers could not finish ({} of {} verified)",
                heap.verified_count(),
                heap.k()
            );
        }
    }

    // --- The same query with no peers at all: pure on-air cost. ---
    let no_peers = MergedRegion::from_regions(Vec::<(Rect, Vec<Poi>)>::new());
    let res = sbnn(q, &cfg, &no_peers, Some((&client.as_dyn(), 0)))
        .resolved()
        .expect("broadcast always resolves");
    let air = res.air.expect("went on air");
    println!(
        "without peers: resolved by {:?} — access latency {} ticks, \
         tuning {} ticks, {} buckets downloaded",
        res.resolved_by, air.latency, air.tuning, air.buckets
    );
    println!("sharing avoided all of that wait.");
}
