//! The paper's motivating scenario (§1): a motorist on a highway asks
//! for the **top-3 nearest hospitals**. An exact broadcast answer can
//! take minutes of airtime — by then the car is miles away. SBNN instead
//! verifies what it can from passing vehicles and, when the heap is full
//! but not fully verified, offers an *approximate* answer immediately,
//! with a per-candidate correctness probability (Lemma 3.2) and the
//! surpassing-ratio detour bound (§3.3.2).
//!
//! Run with: `cargo run --release --example highway_hospitals`

use airshare::core::approx::worst_case_detour;
use airshare::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // 60 hospitals over a 30 mi × 30 mi metro area (λ = 1/15 per mi²).
    let world = Rect::from_coords(0.0, 0.0, 30.0, 30.0);
    let mut rng = StdRng::seed_from_u64(2007);
    let hospitals: Vec<Poi> = (0..60)
        .map(|i| {
            Poi::new(
                i,
                Point::new(rng.gen_range(0.0..30.0), rng.gen_range(0.0..30.0)),
            )
        })
        .collect();
    let lambda = 60.0 / (30.0 * 30.0);

    let index = AirIndex::try_build(hospitals.clone(), Grid::new(world, 6), 4).unwrap();
    let schedule = Schedule::new(index.data_buckets(), index.index_buckets(), 2);
    let client = OnAirClient::new(&index, &schedule);

    // The motorist is at mile 12 of an east-west highway (y = 15).
    let q = Point::new(13.8, 16.2);
    println!("motorist at {q:?} asks: top-3 nearest hospitals?\n");

    // Oncoming traffic shares what it verified driving the other way:
    // a corridor ahead and a patch behind.
    let corridors = [
        Rect::from_coords(8.0, 12.0, 18.0, 18.0),  // around the highway
        Rect::from_coords(10.0, 9.0, 16.0, 13.0),  // south patch
    ];
    let mvr = MergedRegion::from_regions(corridors.iter().map(|vr| {
        (
            *vr,
            hospitals
                .iter()
                .filter(|p| vr.contains(p.pos))
                .copied()
                .collect::<Vec<_>>(),
        )
    }));
    println!(
        "peers shared {} verified hospitals across {} regions",
        mvr.pois().len(),
        corridors.len()
    );

    // NNV first: what can be *proven* locally?
    let heap = nnv(q, 3, &mvr, lambda);
    println!("\nafter verification (state {:?}):", heap.state());
    for (i, e) in heap.entries().iter().enumerate() {
        match (e.verified, e.correctness, e.surpassing_ratio) {
            (true, _, _) => println!(
                "  #{}: hospital {} at {:.2} mi — VERIFIED nearest",
                i + 1,
                e.poi.id,
                e.distance
            ),
            (false, Some(c), ratio) => {
                print!(
                    "  #{}: hospital {} at {:.2} mi — unverified, correct with p ≈ {:.0}%",
                    i + 1,
                    e.poi.id,
                    e.distance,
                    100.0 * c
                );
                if let (Some(r), Some(dv)) = (ratio, heap.lower_bound()) {
                    print!(
                        ", worst-case detour ≈ {:.1} mi",
                        worst_case_detour(dv, r)
                    );
                }
                println!();
            }
            _ => unreachable!("unverified entries always carry correctness"),
        }
    }

    // Decision point: accept the approximate answer now, or wait?
    let cfg_accept = SbnnConfig {
        k: 3,
        accept_approx: true,
        min_correctness: 0.5,
        ..SbnnConfig::paper_defaults(3, lambda)
    };
    let fast = sbnn(q, &cfg_accept, &mvr, Some((&client.as_dyn(), 0)))
        .resolved()
        .unwrap();
    println!(
        "\naccepting ≥50% candidates → answered by {:?} with zero broadcast wait",
        fast.resolved_by
    );

    let cfg_exact = SbnnConfig {
        accept_approx: false,
        ..cfg_accept
    };
    let exact = sbnn(q, &cfg_exact, &mvr, Some((&client.as_dyn(), 0)))
        .resolved()
        .unwrap();
    if let Some(air) = exact.air {
        println!(
            "demanding exactness → {:?}: latency {} ticks, tuning {} ticks \
             ({} buckets; peer bounds pruned the search)",
            exact.resolved_by, air.latency, air.tuning, air.buckets
        );
    }
    let baseline = client.knn(0, q, 3).unwrap();
    println!(
        "no sharing at all      → latency {} ticks, tuning {} ticks ({} buckets)",
        baseline.stats.latency, baseline.stats.tuning, baseline.stats.buckets
    );

    // Sanity: the exact answer matches brute force.
    let mut brute = hospitals.clone();
    brute.sort_by(|a, b| a.pos.distance_sq(q).total_cmp(&b.pos.distance_sq(q)));
    for (got, want) in exact.neighbors.iter().zip(&brute) {
        assert_eq!(got.poi.id, want.id);
    }
    println!("\nexact answer cross-checked against brute force ✓");
}
