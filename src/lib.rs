//! # airshare — location-based spatial queries with P2P data sharing in
//! wireless broadcast environments
//!
//! A from-scratch Rust implementation of Ku, Zimmermann & Wang,
//! *"Location-based Spatial Queries with Data Sharing in Wireless
//! Broadcast Environments"* (ICDE 2007), together with every substrate
//! the paper builds on: the `(1, m)` Hilbert-curve air index of Zheng et
//! al., a broadcast-channel simulator, mobility models, verified-region
//! caches, single-hop P2P sharing, and a full-system simulator that
//! regenerates the paper's evaluation figures.
//!
//! ## The idea in one paragraph
//!
//! In a wireless broadcast environment the server transmits every POI in
//! a fixed cycle; a client answering *"where are the 3 nearest gas
//! stations?"* must wait for the right buckets to come around — possibly
//! minutes. But nearby vehicles have recently asked similar questions
//! and cached the answers. If a peer hands over its **verified region**
//! (an area within which it provably knows *every* POI) plus the POIs
//! inside, the querying host can merge several such regions and *locally
//! prove* that some candidates are true nearest neighbors (Lemma 3.1),
//! estimate the correctness of the rest (Lemma 3.2, `e^{-λu}`), and — if
//! it must still use the channel — skip every bucket its peers already
//! verified (§3.3.3). Window queries shrink to the uncovered remainder
//! (§3.4).
//!
//! ## Quick start
//!
//! ```
//! use airshare::prelude::*;
//!
//! // A tiny world: 4 POIs, one peer with a verified region.
//! let pois = vec![
//!     Poi::new(0, Point::new(1.0, 1.0)),
//!     Poi::new(1, Point::new(2.0, 2.0)),
//!     Poi::new(2, Point::new(8.0, 8.0)),
//!     Poi::new(3, Point::new(9.0, 1.0)),
//! ];
//! // The peer verified the region [0,4]×[0,4] — it knows POIs 0 and 1.
//! let peer_vr = Rect::from_coords(0.0, 0.0, 4.0, 4.0);
//! let peer_pois: Vec<Poi> = pois.iter().filter(|p| peer_vr.contains(p.pos)).copied().collect();
//! let mvr = MergedRegion::from_regions([(peer_vr, peer_pois)]);
//!
//! // A host at (1.5, 1.5) asks for its nearest neighbor.
//! let q = Point::new(1.5, 1.5);
//! let heap = nnv(q, 1, &mvr, 0.25);
//! assert!(heap.is_fulfilled());           // verified without the channel
//! assert_eq!(heap.entries()[0].poi.id, 0); // POI 0 is provably nearest
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |--------|----------|
//! | [`geom`] | points, MBRs, rectangle unions (MVR), disk areas |
//! | [`hilbert`] | Hilbert codec, window→interval decomposition |
//! | [`rtree`] | ground-truth R-tree + linear-scan baseline |
//! | [`broadcast`] | `(1, m)` air index (pluggable Hilbert / R-tree backends), channel timing, on-air baselines |
//! | [`mobility`] | random waypoint, grid roads, Poisson workloads |
//! | [`cache`] | verified-region host caches + replacement policies |
//! | [`p2p`] | neighbor discovery, share protocol |
//! | [`core`] | **SBNN / SBWQ** — the paper's contribution |
//! | [`obs`] | recorder trait, trace events, counters/histograms, stats |
//! | [`exec`] | deterministic worker pool, work stealing, seed splitting |
//! | [`sim`] | the full-system simulator behind §4 |
//! | [`serve`] | the base station as a long-running service: sessions, batched admission, backpressure |
//!
//! ## Parallelism
//!
//! [`sim::Simulation::run_parallel`] shards each epoch's hosts across an
//! [`exec::ExecPool`] and produces a report **bit-identical** to the
//! sequential [`sim::Simulation::run`] for any thread count: within an
//! epoch peers observe the previous epoch's committed caches, every RNG
//! draw comes from a per-`(host, epoch)` stream, and outcomes commit in
//! global event order at the epoch barrier.
//!
//! ```
//! use airshare::prelude::*;
//!
//! let p = params::synthetic_suburbia().scaled(0.004);
//! let mut cfg = SimConfig::paper_defaults(p, QueryKind::Knn, 42);
//! cfg.warmup_min = 5.0;
//! cfg.measure_min = 5.0;
//! cfg.hilbert_order = 6;
//! let sequential = Simulation::try_new(cfg.clone()).unwrap().run();
//! let parallel = Simulation::try_new(cfg).unwrap().run_parallel(&ExecPool::fixed(4));
//! assert_eq!(parallel, sequential);
//! ```
//!
//! ## Observability
//!
//! Every query-path API has a `_rec` twin threading a [`obs::Recorder`]
//! through the protocol, and [`sim::Simulation::run_with`] accepts one
//! for a whole run. The default [`obs::NoopRecorder`] is inert — plain
//! calls behave exactly as before. To get percentiles without writing a
//! recorder yourself:
//!
//! ```
//! use airshare::prelude::*;
//!
//! let p = params::synthetic_suburbia().scaled(0.004);
//! let mut cfg = SimConfig::paper_defaults(p, QueryKind::Knn, 42);
//! cfg.warmup_min = 5.0;
//! cfg.measure_min = 5.0;
//! cfg.hilbert_order = 6;
//! let report = Simulation::try_new(cfg).unwrap().run_metrics();
//! let m = report.metrics.expect("run_metrics always fills this");
//! // The trace sees warm-up queries too, so it can only count more.
//! assert!(m.queries_total >= report.queries.total);
//! println!("p95 tuning = {} ticks", m.tuning.p95);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use airshare_broadcast as broadcast;
pub use airshare_cache as cache;

/// Fleet-scale storage, re-exported flat: the canonical POI table and
/// its handles, the cache entry arena and its generational handles, the
/// columnar fleet store, and the resolving cache view.
///
/// These are the types behind the million-host engine (DESIGN.md §15):
/// POI payloads live once in a [`fleet::PoiTable`] and everything else
/// — caches, peer replies, index backends — refers to them by
/// [`fleet::PoiId`]; per-host cache entries live in a
/// [`fleet::EntryArena`] addressed by generational [`fleet::EntryId`]s;
/// per-host scalars live in [`fleet::FleetStore`] columns.
pub mod fleet {
    pub use airshare_broadcast::{Poi, PoiId, PoiTable};
    pub use airshare_cache::{EntryArena, EntryId, EntryView, HostCacheRef};
    pub use airshare_sim::FleetStore;
}
pub use airshare_core as core;
pub use airshare_exec as exec;
pub use airshare_geom as geom;
pub use airshare_hilbert as hilbert;
pub use airshare_mobility as mobility;
pub use airshare_obs as obs;
pub use airshare_p2p as p2p;
pub use airshare_rtree as rtree;
pub use airshare_serve as serve;
pub use airshare_sim as sim;

/// The items most programs need, re-exported flat.
pub mod prelude {
    pub use airshare_broadcast::{
        AirIndex, AirIndexBackend, BuildParams, OnAirClient, OutageSchedule, Poi, PoiCategory,
        PoiId, PoiTable, RtreeAirIndex, Schedule,
    };
    pub use airshare_cache::{
        CacheContext, EntryArena, EntryId, EntryView, HostCache, HostCacheRef, QuarantineConfig,
        QuarantineLedger, RegionEntry, ReplacementPolicy,
    };
    pub use airshare_core::{
        nnv, sbnn, sbnn_rec, sbwq, sbwq_rec, HeapState, MergedRegion, NnCandidate, ResolvedBy,
        ResultHeap, SbnnConfig, SbnnOutcome, SbnnResult, SbwqConfig, SbwqOutcome, SbwqResult,
    };
    pub use airshare_exec::{ExecPool, Parallelism};
    pub use airshare_geom::{Point, Rect, RectUnion};
    pub use airshare_hilbert::{Grid, HilbertCurve};
    pub use airshare_mobility::{Mobility, MobilityConfig, QueryScheduler, RandomWaypoint};
    pub use airshare_obs::{
        AccessStats, AnswerQuality, Counter, FaultStats, Histogram, JsonlTraceRecorder,
        LatencySummary, MetricsRecorder, MetricsSnapshot, NoopRecorder, PercentileSummary,
        Recorder, ShareStats, TraceEvent,
    };
    pub use airshare_p2p::{gather_peer_data, NeighborGrid, PeerReply};
    pub use airshare_rtree::RTree;
    pub use airshare_serve::{
        Pacing, QueryRequest, ServeConfig, ServeError, Service, ServiceHandle, ServiceReport,
    };
    pub use airshare_sim::{
        params, BackendKind, ChurnConfig, FleetStore, QualityStats, QueryAnswer, QueryKind,
        QuerySpec, SimConfig, SimConfigBuilder, SimReport, Simulation,
    };
}
