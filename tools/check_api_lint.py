#!/usr/bin/env python3
"""API lint: public functions must not re-grow owned `Vec<Poi>` signatures.

The fleet-scale refactor (DESIGN.md §15) moved POI payloads into the
canonical `PoiTable` and made handles (`PoiId`) the currency of every
hot path. Owned `Vec<Poi>` in a *public function signature* is now the
exception, reserved for the sanctioned payload boundaries:

  * air-interface transfer (building an index, decoding a bucket,
    a client retrieving payloads off the air), and
  * explicit resolve/export bridges that turn handles back into
    payloads for callers who want them.

Everything else must speak handles. This script scans every `pub fn`
signature in the library sources and fails if `Vec<Poi>` appears in one
that is neither `#[deprecated]` (the migration shims) nor on the
explicit allowlist below. Adding a new owned-POI public API therefore
requires touching this file — which is the point.

Usage: python3 tools/check_api_lint.py  (run from the repo root)
"""

import re
import sys
from pathlib import Path

# Sanctioned `pub fn … Vec<Poi> …` signatures, keyed "<path>::<fn name>".
ALLOWED = {
    # Air-interface payload boundaries: POIs genuinely move here.
    "crates/broadcast/src/index.rs::try_build",
    "crates/broadcast/src/wire.rs::decode_bucket",
    "crates/broadcast/src/client.rs::retrieve",
    "crates/broadcast/src/client.rs::retrieve_rec",
    # Explicit export/resolve bridges (handle -> payload, by request).
    "crates/broadcast/src/table.rs::to_vec",
    "crates/cache/src/view.rs::share_snapshot",
    "crates/p2p/src/protocol.rs::resolve",
    # Query-result assembly: algorithm outputs are payloads by design.
    "crates/core/src/mvr.rs::from_regions",
    "crates/core/src/sbwq.rs::adoptable_window_region",
}

FN_NAME = re.compile(r"\bfn\s+([A-Za-z0-9_]+)")

SRC_GLOBS = ["src/**/*.rs", "crates/*/src/**/*.rs"]


def signatures(text):
    """Yields (line_no, fn_name, signature, deprecated) for each pub fn.

    A signature runs from its `pub fn` line to the first `{` or `;` at
    paren depth zero; `deprecated` is True when the contiguous
    attribute/doc block directly above contains `#[deprecated`.
    """
    lines = text.splitlines()
    for i, line in enumerate(lines):
        stripped = line.strip()
        # Bare `pub` only: pub(crate)/pub(super) are not public API.
        if not re.match(r"pub\s+(const\s+)?fn\s", stripped):
            continue
        sig, depth, j = [], 0, i
        while j < len(lines):
            sig.append(lines[j])
            depth += lines[j].count("(") - lines[j].count(")")
            body = lines[j].split("//")[0]
            if depth <= 0 and ("{" in body or body.rstrip().endswith(";")):
                break
            j += 1
        flat = " ".join(s.strip() for s in sig)
        m = FN_NAME.search(flat)
        if not m:
            continue
        deprecated = False
        k = i - 1
        while k >= 0:
            above = lines[k].strip()
            if above.startswith(("#[", "#!", "///", "//!")) or (
                above and not above.endswith(("{", "}", ";"))
            ):
                if "#[deprecated" in above:
                    deprecated = True
                k -= 1
            else:
                break
        yield i + 1, m.group(1), flat, deprecated


def main():
    root = Path(__file__).resolve().parent.parent
    violations = []
    seen_allowed = set()
    for glob in SRC_GLOBS:
        for path in sorted(root.glob(glob)):
            rel = path.relative_to(root).as_posix()
            for line_no, name, sig, deprecated in signatures(path.read_text()):
                if "Vec<Poi>" not in sig.replace(" ", "").replace(
                    "Vec < Poi >", "Vec<Poi>"
                ):
                    continue
                key = f"{rel}::{name}"
                if key in ALLOWED:
                    seen_allowed.add(key)
                elif not deprecated:
                    violations.append(f"{rel}:{line_no}: pub fn {name}: {sig}")
    stale = ALLOWED - seen_allowed
    if stale:
        print("stale allowlist entries (signature gone or no longer owned):")
        for key in sorted(stale):
            print(f"  {key}")
    if violations:
        print("public APIs re-growing owned Vec<Poi> signatures:")
        for v in violations:
            print(f"  {v}")
        print(
            "\nNew public APIs must speak PoiId handles against the canonical\n"
            "PoiTable (DESIGN.md §15). If this boundary genuinely transfers\n"
            "payloads, add it to ALLOWED in tools/check_api_lint.py with a\n"
            "justifying comment; migration shims must be #[deprecated]."
        )
    if stale or violations:
        return 1
    print(f"api lint ok: {len(seen_allowed)} sanctioned owned-POI boundaries")
    return 0


if __name__ == "__main__":
    sys.exit(main())
